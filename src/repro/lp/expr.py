"""Linear expressions and constraints.

``LinExpr`` is an immutable-by-convention mapping from variables to
coefficients plus a constant term.  Comparison operators produce
:class:`Constraint` objects that can be added to a model, which keeps the
encoding code in :mod:`repro.core.encoder` close to the paper's equations.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Tuple, Union

from .variable import Variable

Number = Union[int, float]
ExprLike = Union["LinExpr", Variable, Number]

#: Constraint senses supported by the model.
LE, GE, EQ = "<=", ">=", "=="


def as_expr(value: ExprLike) -> "LinExpr":
    """Coerce a variable or number into a :class:`LinExpr`."""
    if isinstance(value, LinExpr):
        return value
    if isinstance(value, Variable):
        return LinExpr({value: 1.0})
    if isinstance(value, (int, float)):
        return LinExpr({}, float(value))
    raise TypeError(f"cannot interpret {value!r} as a linear expression")


class LinExpr:
    """A linear expression ``sum(coef * var) + constant``."""

    __slots__ = ("terms", "constant")

    def __init__(
        self, terms: Mapping[Variable, float] | None = None, constant: float = 0.0
    ) -> None:
        self.terms: Dict[Variable, float] = dict(terms or {})
        self.constant = float(constant)

    # -- construction helpers ------------------------------------------------

    @staticmethod
    def total(variables: Iterable[Variable]) -> "LinExpr":
        """Sum of the given variables, each with coefficient 1."""
        terms: Dict[Variable, float] = {}
        for var in variables:
            terms[var] = terms.get(var, 0.0) + 1.0
        return LinExpr(terms)

    def copy(self) -> "LinExpr":
        return LinExpr(dict(self.terms), self.constant)

    # -- arithmetic -----------------------------------------------------------

    def _combined(self, other: ExprLike, sign: float) -> "LinExpr":
        other_expr = as_expr(other)
        terms = dict(self.terms)
        for var, coef in other_expr.terms.items():
            new = terms.get(var, 0.0) + sign * coef
            if new == 0.0:
                terms.pop(var, None)
            else:
                terms[var] = new
        return LinExpr(terms, self.constant + sign * other_expr.constant)

    def __add__(self, other: ExprLike) -> "LinExpr":
        return self._combined(other, 1.0)

    def __radd__(self, other: ExprLike) -> "LinExpr":
        return self._combined(other, 1.0)

    def __sub__(self, other: ExprLike) -> "LinExpr":
        return self._combined(other, -1.0)

    def __rsub__(self, other: ExprLike) -> "LinExpr":
        return as_expr(other)._combined(self, -1.0)

    def __mul__(self, factor: Number) -> "LinExpr":
        if not isinstance(factor, (int, float)):
            raise TypeError("LinExpr can only be multiplied by a scalar")
        if factor == 0:
            return LinExpr({}, 0.0)
        return LinExpr(
            {var: coef * factor for var, coef in self.terms.items()},
            self.constant * factor,
        )

    def __rmul__(self, factor: Number) -> "LinExpr":
        return self.__mul__(factor)

    def __neg__(self) -> "LinExpr":
        return self * -1.0

    # -- comparisons produce constraints ---------------------------------------

    def __le__(self, other: ExprLike) -> "Constraint":
        return Constraint(self - as_expr(other), LE)

    def __ge__(self, other: ExprLike) -> "Constraint":
        return Constraint(self - as_expr(other), GE)

    def __eq__(self, other: ExprLike) -> "Constraint":  # type: ignore[override]
        return Constraint(self - as_expr(other), EQ)

    def __hash__(self) -> int:  # constraints use identity semantics
        return id(self)

    # -- evaluation -------------------------------------------------------------

    def value(self, assignment: Mapping[Variable, float]) -> float:
        """Evaluate the expression under a variable assignment."""
        return self.constant + sum(
            coef * assignment.get(var, 0.0) for var, coef in self.terms.items()
        )

    def variables(self) -> Tuple[Variable, ...]:
        return tuple(self.terms)

    def __repr__(self) -> str:
        parts = [f"{coef:+g}*{var.name}" for var, coef in self.terms.items()]
        if self.constant or not parts:
            parts.append(f"{self.constant:+g}")
        return "LinExpr(" + " ".join(parts) + ")"


class Constraint:
    """A linear constraint ``expr (<=|>=|==) 0``.

    The right-hand side is folded into the expression's constant; the solver
    backends read it back out as ``-expr.constant``.
    """

    __slots__ = ("expr", "sense", "name")

    def __init__(self, expr: LinExpr, sense: str, name: str = "") -> None:
        if sense not in (LE, GE, EQ):
            raise ValueError(f"unknown constraint sense {sense!r}")
        self.expr = expr
        self.sense = sense
        self.name = name

    @property
    def rhs(self) -> float:
        return -self.expr.constant

    def named(self, name: str) -> "Constraint":
        self.name = name
        return self

    def is_satisfied(
        self, assignment: Mapping[Variable, float], tol: float = 1e-7
    ) -> bool:
        lhs = self.expr.value(assignment)
        if self.sense == LE:
            return lhs <= tol
        if self.sense == GE:
            return lhs >= -tol
        return abs(lhs) <= tol

    def __repr__(self) -> str:
        return f"Constraint({self.expr!r} {self.sense} 0, name={self.name!r})"
