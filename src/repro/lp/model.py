"""LP model container with the lowering helpers SherLock's encoder needs.

The paper's objective (Equation 8) contains two non-linear shapes that have
standard LP lowerings:

* ``max(0, expr)`` — used by the Mostly-Protected terms (Equation 2);
  lowered via an auxiliary variable ``t >= expr, t >= 0`` that is minimized.
* ``|expr|`` — used by the Mostly-Paired terms (Equations 6 and 7);
  lowered via ``t >= expr, t >= -expr``.

Both lowerings are exact when the auxiliary variable's objective
coefficient is positive, which is always the case here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from .expr import EQ, GE, LE, Constraint, ExprLike, LinExpr, as_expr
from .solution import Solution
from .variable import Variable


@dataclass
class StandardForm:
    """Standard form: minimize ``c @ x`` subject to
    ``a_ub @ x <= b_ub``, ``a_eq @ x == b_eq`` and per-variable bounds.

    ``a_ub``/``a_eq`` are dense from :meth:`Model.to_standard_form` and
    ``scipy.sparse.csr_matrix`` from :meth:`Model.to_standard_form_cached`;
    backends accept either."""

    c: np.ndarray
    a_ub: np.ndarray
    b_ub: np.ndarray
    a_eq: np.ndarray
    b_eq: np.ndarray
    bounds: List[Tuple[float, Optional[float]]]
    variables: List[Variable]
    objective_offset: float


@dataclass
class ModelCheckpoint:
    """A point a :class:`Model` can roll back to (see :meth:`Model.rollback`).

    Holds the prefix sizes plus a snapshot of the objective, so terms and
    constraints appended after the checkpoint can be discarded and the
    auxiliary-variable numbering replayed identically.
    """

    n_variables: int
    n_constraints: int
    aux_counter: int
    objective_terms: Dict["Variable", float]
    objective_constant: float


class StandardFormCache:
    """Sparse lowering of a model's stable constraint prefix.

    The incremental encoder only ever *appends* constraints past a
    checkpoint and truncates back to it, so the prefix rows of ``a_ub`` /
    ``a_eq`` are reusable verbatim across solves; only the suffix is
    re-lowered.  Rows are kept as sorted (column-index, value) arrays —
    column indices are global variable indexes, so cached rows stay valid
    as the model grows (prefix constraints only reference prefix
    variables, which the encoder's checkpoint discipline guarantees).
    """

    def __init__(self) -> None:
        self.prefix_len = 0
        self.ub_cols: List[int] = []
        self.ub_vals: List[float] = []
        self.ub_lens: List[int] = []
        self.ub_rhs: List[float] = []
        self.eq_cols: List[int] = []
        self.eq_vals: List[float] = []
        self.eq_lens: List[int] = []
        self.eq_rhs: List[float] = []

    def reset(self) -> None:
        self.__init__()


class Model:
    """A minimization LP model."""

    def __init__(self, name: str = "model") -> None:
        self.name = name
        self.variables: List[Variable] = []
        self.constraints: List[Constraint] = []
        self.objective = LinExpr()
        self._names: Dict[str, Variable] = {}
        self._aux_counter = 0

    # -- building -------------------------------------------------------------

    def add_variable(
        self, name: str, lower: float = 0.0, upper: Optional[float] = None
    ) -> Variable:
        """Create a variable with a unique name and register it."""
        if name in self._names:
            raise ValueError(f"duplicate variable name {name!r}")
        var = Variable(name, lower, upper, index=len(self.variables))
        self.variables.append(var)
        self._names[name] = var
        return var

    def get_variable(self, name: str) -> Variable:
        return self._names[name]

    def has_variable(self, name: str) -> bool:
        return name in self._names

    def add_constraint(self, constraint: Constraint, name: str = "") -> Constraint:
        if name:
            constraint.name = name
        for var in constraint.expr.terms:
            if (
                var.index < 0
                or var.index >= len(self.variables)
                or self.variables[var.index] is not var
            ):
                raise ValueError(
                    f"constraint {name!r} uses variable {var.name!r} that is "
                    f"not registered with this model"
                )
        self.constraints.append(constraint)
        return constraint

    def add_objective_term(self, expr: ExprLike, weight: float = 1.0) -> None:
        """Add ``weight * expr`` to the (minimized) objective.

        Accumulates in place (the historical rebind-via-``+`` copied the
        whole objective per term, making encoding quadratic in terms),
        replicating ``LinExpr.__add__`` exactly: same per-coefficient
        arithmetic, same drop-on-exact-zero, same key insertion order.
        """
        terms_ = self.objective.terms
        if type(expr) is Variable:
            # Scalar fast path; exact: ``as_expr`` would contribute
            # ``1.0 * weight == weight`` and a ``0.0 * weight`` constant.
            new = terms_.get(expr, 0.0) + weight
            if new == 0.0:
                terms_.pop(expr, None)
            else:
                terms_[expr] = new
            return
        other = as_expr(expr) * weight
        for var, coef in other.terms.items():
            new = terms_.get(var, 0.0) + coef
            if new == 0.0:
                terms_.pop(var, None)
            else:
                terms_[var] = new
        self.objective.constant += other.constant

    # -- lowering helpers -------------------------------------------------------

    def _fresh_aux(self, prefix: str) -> Variable:
        self._aux_counter += 1
        return self.add_variable(f"__{prefix}_{self._aux_counter}")

    def add_max0_term(self, expr: ExprLike, weight: float = 1.0) -> Variable:
        """Add ``weight * max(0, expr)`` to the objective; returns the aux var."""
        aux = self._fresh_aux("max0")
        self.add_constraint(aux >= as_expr(expr), name=f"{aux.name}_ge")
        self.add_objective_term(aux, weight)
        return aux

    def add_abs_term(self, expr: ExprLike, weight: float = 1.0) -> Variable:
        """Add ``weight * |expr|`` to the objective; returns the aux var."""
        aux = self._fresh_aux("abs")
        e = as_expr(expr)
        self.add_constraint(aux >= e, name=f"{aux.name}_pos")
        self.add_constraint(aux >= -e, name=f"{aux.name}_neg")
        self.add_objective_term(aux, weight)
        return aux

    # -- checkpoint / rollback ----------------------------------------------------

    def checkpoint(self) -> ModelCheckpoint:
        """Snapshot the current prefix for a later :meth:`rollback`."""
        return ModelCheckpoint(
            n_variables=len(self.variables),
            n_constraints=len(self.constraints),
            aux_counter=self._aux_counter,
            objective_terms=dict(self.objective.terms),
            objective_constant=self.objective.constant,
        )

    def rollback(self, cp: ModelCheckpoint) -> None:
        """Discard every variable, constraint and objective term added
        after ``cp``; auxiliary numbering resumes from the checkpoint so
        re-appended sections get identical names."""
        for var in self.variables[cp.n_variables:]:
            del self._names[var.name]
        del self.variables[cp.n_variables:]
        del self.constraints[cp.n_constraints:]
        self._aux_counter = cp.aux_counter
        self.objective = LinExpr(cp.objective_terms, cp.objective_constant)

    # -- lowering to matrices -----------------------------------------------------

    def to_standard_form(self) -> StandardForm:
        n = len(self.variables)
        c = np.zeros(n)
        for var, coef in self.objective.terms.items():
            c[var.index] += coef

        ub_rows: List[np.ndarray] = []
        ub_rhs: List[float] = []
        eq_rows: List[np.ndarray] = []
        eq_rhs: List[float] = []
        for con in self.constraints:
            row = np.zeros(n)
            for var, coef in con.expr.terms.items():
                row[var.index] += coef
            rhs = con.rhs
            if con.sense == LE:
                ub_rows.append(row)
                ub_rhs.append(rhs)
            elif con.sense == GE:
                ub_rows.append(-row)
                ub_rhs.append(-rhs)
            elif con.sense == EQ:
                eq_rows.append(row)
                eq_rhs.append(rhs)

        a_ub = np.array(ub_rows) if ub_rows else np.zeros((0, n))
        a_eq = np.array(eq_rows) if eq_rows else np.zeros((0, n))
        bounds = [(v.lower, v.upper) for v in self.variables]
        return StandardForm(
            c=c,
            a_ub=a_ub,
            b_ub=np.array(ub_rhs),
            a_eq=a_eq,
            b_eq=np.array(eq_rhs),
            bounds=bounds,
            variables=list(self.variables),
            objective_offset=self.objective.constant,
        )

    @staticmethod
    def _lower_sparse(constraints, sink: StandardFormCache) -> None:
        """Lower constraints into ``sink``'s flat CSR component lists.

        Rows carry sorted global column indexes, matching the canonical
        CSR a dense :meth:`to_standard_form` matrix converts to — so the
        cached assembly is value-identical to the dense path."""
        for con in constraints:
            items = sorted(
                (var.index, coef)
                for var, coef in con.expr.terms.items()
                if coef != 0.0
            )
            if con.sense == LE:
                sink.ub_cols.extend(i for i, _ in items)
                sink.ub_vals.extend(v for _, v in items)
                sink.ub_lens.append(len(items))
                sink.ub_rhs.append(con.rhs)
            elif con.sense == GE:
                sink.ub_cols.extend(i for i, _ in items)
                sink.ub_vals.extend(-v for _, v in items)
                sink.ub_lens.append(len(items))
                sink.ub_rhs.append(-con.rhs)
            elif con.sense == EQ:
                sink.eq_cols.extend(i for i, _ in items)
                sink.eq_vals.extend(v for _, v in items)
                sink.eq_lens.append(len(items))
                sink.eq_rhs.append(con.rhs)

    def to_standard_form_cached(
        self, cache: StandardFormCache, prefix_len: int
    ) -> StandardForm:
        """:meth:`to_standard_form`, reusing ``cache`` for the lowering of
        ``constraints[:prefix_len]`` (which may only have grown since the
        cache was last used).  ``a_ub``/``a_eq`` come back as
        ``scipy.sparse.csr_matrix`` with exactly the values the dense
        lowering would produce (sense grouping preserves constraint order,
        so prefix rows stay a prefix of each matrix).  The revised simplex
        and scipy backends consume the sparse matrices directly; only the
        dense-tableau reference backend densifies."""
        from scipy.sparse import csr_matrix

        if cache.prefix_len > prefix_len:
            cache.reset()
        if cache.prefix_len < prefix_len:
            self._lower_sparse(
                self.constraints[cache.prefix_len : prefix_len], cache
            )
            cache.prefix_len = prefix_len

        n = len(self.variables)
        c = np.zeros(n)
        terms = self.objective.terms
        if terms:
            # Keys are unique variables, so plain assignment matches the
            # dense path's ``+=`` accumulation.
            c[np.fromiter((v.index for v in terms), np.intp, len(terms))] = (
                np.fromiter(terms.values(), np.float64, len(terms))
            )

        suffix = StandardFormCache()
        self._lower_sparse(self.constraints[prefix_len:], suffix)

        def assemble(cols, vals, lens):
            indptr = np.zeros(len(lens) + 1, dtype=np.int64)
            if lens:
                np.cumsum(lens, out=indptr[1:])
            return csr_matrix(
                (
                    np.array(vals, dtype=np.float64),
                    np.array(cols, dtype=np.int32),
                    indptr,
                ),
                shape=(len(lens), n),
            )

        a_ub = assemble(
            cache.ub_cols + suffix.ub_cols,
            cache.ub_vals + suffix.ub_vals,
            cache.ub_lens + suffix.ub_lens,
        )
        a_eq = assemble(
            cache.eq_cols + suffix.eq_cols,
            cache.eq_vals + suffix.eq_vals,
            cache.eq_lens + suffix.eq_lens,
        )
        bounds = [(v.lower, v.upper) for v in self.variables]
        return StandardForm(
            c=c,
            a_ub=a_ub,
            b_ub=np.array(cache.ub_rhs + suffix.ub_rhs),
            a_eq=a_eq,
            b_eq=np.array(cache.eq_rhs + suffix.eq_rhs),
            bounds=bounds,
            variables=list(self.variables),
            objective_offset=self.objective.constant,
        )

    # -- solving -----------------------------------------------------------------

    def solve(self, backend: str = "auto", presolve=True) -> Solution:
        """Solve the model with the requested backend.

        Backends (see :mod:`repro.lp.backends`):

        * ``"auto"`` — scipy/HiGHS when available, else the built-in
          revised simplex;
        * ``"scipy"`` / ``"highs"`` — :func:`scipy.optimize.linprog`;
        * ``"simplex"`` / ``"revised-simplex"`` — the built-in sparse
          revised simplex with an LU-factorized basis (default built-in);
        * ``"dense-tableau"`` — the dense tableau reference
          implementation (escape hatch, byte-identical reports to the
          revised simplex).

        ``presolve`` is forwarded to :func:`repro.lp.backends.solve`:
        ``True`` reduces scale-tier-sized forms first (identity below
        the gate), ``False`` never does, ``"force"`` always does.
        """
        from . import backends

        return backends.solve(self, backend, presolve=presolve)

    def stats(self) -> Dict[str, int]:
        return {
            "variables": len(self.variables),
            "constraints": len(self.constraints),
            "objective_terms": len(self.objective.terms),
        }

    def __repr__(self) -> str:
        s = self.stats()
        return (
            f"Model({self.name!r}, vars={s['variables']}, "
            f"cons={s['constraints']})"
        )
