"""LP model container with the lowering helpers SherLock's encoder needs.

The paper's objective (Equation 8) contains two non-linear shapes that have
standard LP lowerings:

* ``max(0, expr)`` — used by the Mostly-Protected terms (Equation 2);
  lowered via an auxiliary variable ``t >= expr, t >= 0`` that is minimized.
* ``|expr|`` — used by the Mostly-Paired terms (Equations 6 and 7);
  lowered via ``t >= expr, t >= -expr``.

Both lowerings are exact when the auxiliary variable's objective
coefficient is positive, which is always the case here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from .expr import EQ, GE, LE, Constraint, ExprLike, LinExpr, as_expr
from .solution import Solution
from .variable import Variable


@dataclass
class StandardForm:
    """Dense standard form: minimize ``c @ x`` subject to
    ``a_ub @ x <= b_ub``, ``a_eq @ x == b_eq`` and per-variable bounds."""

    c: np.ndarray
    a_ub: np.ndarray
    b_ub: np.ndarray
    a_eq: np.ndarray
    b_eq: np.ndarray
    bounds: List[Tuple[float, Optional[float]]]
    variables: List[Variable]
    objective_offset: float


class Model:
    """A minimization LP model."""

    def __init__(self, name: str = "model") -> None:
        self.name = name
        self.variables: List[Variable] = []
        self.constraints: List[Constraint] = []
        self.objective = LinExpr()
        self._names: Dict[str, Variable] = {}
        self._aux_counter = 0

    # -- building -------------------------------------------------------------

    def add_variable(
        self, name: str, lower: float = 0.0, upper: Optional[float] = None
    ) -> Variable:
        """Create a variable with a unique name and register it."""
        if name in self._names:
            raise ValueError(f"duplicate variable name {name!r}")
        var = Variable(name, lower, upper, index=len(self.variables))
        self.variables.append(var)
        self._names[name] = var
        return var

    def get_variable(self, name: str) -> Variable:
        return self._names[name]

    def has_variable(self, name: str) -> bool:
        return name in self._names

    def add_constraint(self, constraint: Constraint, name: str = "") -> Constraint:
        if name:
            constraint.name = name
        for var in constraint.expr.terms:
            if (
                var.index < 0
                or var.index >= len(self.variables)
                or self.variables[var.index] is not var
            ):
                raise ValueError(
                    f"constraint {name!r} uses variable {var.name!r} that is "
                    f"not registered with this model"
                )
        self.constraints.append(constraint)
        return constraint

    def add_objective_term(self, expr: ExprLike, weight: float = 1.0) -> None:
        """Add ``weight * expr`` to the (minimized) objective."""
        self.objective = self.objective + as_expr(expr) * weight

    # -- lowering helpers -------------------------------------------------------

    def _fresh_aux(self, prefix: str) -> Variable:
        self._aux_counter += 1
        return self.add_variable(f"__{prefix}_{self._aux_counter}")

    def add_max0_term(self, expr: ExprLike, weight: float = 1.0) -> Variable:
        """Add ``weight * max(0, expr)`` to the objective; returns the aux var."""
        aux = self._fresh_aux("max0")
        self.add_constraint(aux >= as_expr(expr), name=f"{aux.name}_ge")
        self.add_objective_term(aux, weight)
        return aux

    def add_abs_term(self, expr: ExprLike, weight: float = 1.0) -> Variable:
        """Add ``weight * |expr|`` to the objective; returns the aux var."""
        aux = self._fresh_aux("abs")
        e = as_expr(expr)
        self.add_constraint(aux >= e, name=f"{aux.name}_pos")
        self.add_constraint(aux >= -e, name=f"{aux.name}_neg")
        self.add_objective_term(aux, weight)
        return aux

    # -- lowering to matrices -----------------------------------------------------

    def to_standard_form(self) -> StandardForm:
        n = len(self.variables)
        c = np.zeros(n)
        for var, coef in self.objective.terms.items():
            c[var.index] += coef

        ub_rows: List[np.ndarray] = []
        ub_rhs: List[float] = []
        eq_rows: List[np.ndarray] = []
        eq_rhs: List[float] = []
        for con in self.constraints:
            row = np.zeros(n)
            for var, coef in con.expr.terms.items():
                row[var.index] += coef
            rhs = con.rhs
            if con.sense == LE:
                ub_rows.append(row)
                ub_rhs.append(rhs)
            elif con.sense == GE:
                ub_rows.append(-row)
                ub_rhs.append(-rhs)
            elif con.sense == EQ:
                eq_rows.append(row)
                eq_rhs.append(rhs)

        a_ub = np.array(ub_rows) if ub_rows else np.zeros((0, n))
        a_eq = np.array(eq_rows) if eq_rows else np.zeros((0, n))
        bounds = [(v.lower, v.upper) for v in self.variables]
        return StandardForm(
            c=c,
            a_ub=a_ub,
            b_ub=np.array(ub_rhs),
            a_eq=a_eq,
            b_eq=np.array(eq_rhs),
            bounds=bounds,
            variables=list(self.variables),
            objective_offset=self.objective.constant,
        )

    # -- solving -----------------------------------------------------------------

    def solve(self, backend: str = "auto") -> Solution:
        """Solve the model with the requested backend.

        ``auto`` prefers the scipy/HiGHS backend and falls back to the
        built-in simplex when scipy is unavailable.
        """
        from . import backends

        return backends.solve(self, backend)

    def stats(self) -> Dict[str, int]:
        return {
            "variables": len(self.variables),
            "constraints": len(self.constraints),
            "objective_terms": len(self.objective.terms),
        }

    def __repr__(self) -> str:
        s = self.stats()
        return (
            f"Model({self.name!r}, vars={s['variables']}, "
            f"cons={s['constraints']})"
        )
