"""Sparse LU factorization of a simplex basis, with eta-file updates.

The revised simplex (:mod:`repro.lp.revised`) never forms ``B^-1``.  It
keeps the current basis matrix ``B`` factorized as

    B = B0 · E1 · E2 · ... · Ek

where ``B0`` is a sparse LU factorization (SuperLU via
``scipy.sparse.linalg.splu``) of the basis at the last refactorization
and each ``Ei`` is an *eta matrix*: the identity with one column replaced
by the pivot column of a subsequent basis change (the product form of
the inverse; Forrest–Tomlin keeps the update inside the U factor, the
eta file keeps it outside — same asymptotics for the short update
chains we bound below).

Solves against ``B`` and ``B^T`` are then::

    ftran:  x = Ek^-1 ... E1^-1 (B0^-1 b)       (entering column, x_B)
    btran:  y = B0^-T (E1^-T ... Ek^-T c)       (pricing duals)

Performance notes (the cold-solve optimization pass):

* the eta file is stored as **packed flat arrays** (one pivot-row /
  pivot-value array plus CSR-style ``indptr``/``indices``/``values``
  triplets holding only the *nonzero* entries of each eta vector), not
  a list of per-pivot dense vectors.  Entries that are exactly zero
  contribute exact no-ops to the ftran/btran recurrences, so skipping
  them leaves every computed value bit-identical while cutting the
  per-eta cost from ``O(m)`` to ``O(nnz(eta))``;
* ``ftran`` accepts a batched ``(m, k)`` right-hand side — one
  triangular solve pass for several vectors — which the driver uses to
  combine the basic-solution refresh with the entering-column solve at
  refactorization points;
* refactorizations can **reuse the column ordering** of the previous
  factorization (``col_order=``): the basis changes by at most
  ``refactor_interval`` columns between refactorizations, so the old
  fill-reducing permutation is usually still good, and re-applying it
  skips the COLAMD analysis (``permc_spec="NATURAL"`` on the
  pre-permuted matrix).  The driver watches :attr:`LUFactor.fill_nnz`
  and falls back to a fresh COLAMD ordering when fill degrades.

Every update appends one eta, so solve cost grows with the chain;
:attr:`LUFactor.should_refactor` tells the driver to refactorize from
scratch once the chain reaches ``refactor_interval`` (or immediately
when an update pivot is numerically tiny, which is how
degeneracy-induced drift is flushed).

The basis columns are handed over in sparse (indices, values) form
taken straight from the CSC constraint matrix — nothing here ever
materializes a dense ``m × m`` basis.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

#: A sparse column: (row indices, values) aligned arrays.
SparseColumn = Tuple[np.ndarray, np.ndarray]

#: Updates accumulated before :attr:`LUFactor.should_refactor` trips.
DEFAULT_REFACTOR_INTERVAL = 64

#: Pivots smaller than this make an eta update numerically unsafe; the
#: driver refactorizes instead.
PIVOT_TOL = 1e-8

#: Initial capacity of the packed eta-entry arrays.
_ETA_CAPACITY = 1024


class SingularBasisError(ValueError):
    """The candidate basis matrix is (numerically) singular."""


class LUFactor:
    """LU-factorized simplex basis with product-form eta updates.

    Parameters
    ----------
    columns:
        The ``m`` basis columns as sparse ``(indices, values)`` pairs.
    refactor_interval:
        Eta-chain length at which :attr:`should_refactor` turns true.
    col_order:
        Optional column ordering (a permutation of ``range(m)``) to
        reuse from a previous factorization instead of computing a fresh
        COLAMD one.  See :attr:`ordering`.

    Raises :class:`SingularBasisError` when the basis cannot be
    factorized (structurally or numerically singular).
    """

    def __init__(
        self,
        columns: Sequence[SparseColumn],
        refactor_interval: int = DEFAULT_REFACTOR_INTERVAL,
        col_order: Optional[np.ndarray] = None,
    ) -> None:
        from scipy.sparse import csc_matrix
        from scipy.sparse.linalg import splu

        m = len(columns)
        self.m = m
        self.refactor_interval = refactor_interval
        self._order: Optional[np.ndarray] = (
            np.asarray(col_order, dtype=np.int64)
            if col_order is not None
            else None
        )
        src: Sequence[SparseColumn] = columns
        if self._order is not None:
            if len(self._order) != m:
                raise ValueError("col_order length must match basis size")
            src = [columns[j] for j in self._order]

        indptr = np.zeros(m + 1, dtype=np.int64)
        nnz = 0
        for j, (idx, _) in enumerate(src):
            nnz += len(idx)
            indptr[j + 1] = nnz
        indices = np.empty(nnz, dtype=np.int64)
        data = np.empty(nnz, dtype=np.float64)
        pos = 0
        for idx, vals in src:
            k = len(idx)
            indices[pos : pos + k] = idx
            data[pos : pos + k] = vals
            pos += k
        matrix = csc_matrix((data, indices, indptr), shape=(m, m))
        try:
            if self._order is not None:
                self._lu = splu(matrix, permc_spec="NATURAL")
            else:
                self._lu = splu(matrix)
        except (RuntimeError, ValueError) as exc:
            raise SingularBasisError(str(exc)) from exc
        #: nnz of the computed L + U factors — the driver's fill gauge.
        self.fill_nnz = int(self._lu.nnz)

        # Packed eta file.
        self._eta_count = 0
        self._eta_rows = np.empty(refactor_interval + 1, dtype=np.int64)
        self._eta_pivots = np.empty(refactor_interval + 1, dtype=np.float64)
        self._eta_indptr = np.zeros(refactor_interval + 2, dtype=np.int64)
        self._eta_idx = np.empty(_ETA_CAPACITY, dtype=np.int64)
        self._eta_val = np.empty(_ETA_CAPACITY, dtype=np.float64)
        self.eta_updates = 0
        #: Total entries appended to the eta file (its packed length).
        self.eta_nnz = 0

    # -- ordering reuse ---------------------------------------------------------

    @property
    def reused_ordering(self) -> bool:
        """Whether this factorization reused a caller-provided ordering."""
        return self._order is not None

    @property
    def ordering(self) -> np.ndarray:
        """The effective column ordering of this factorization — pass it
        as ``col_order`` to the next :class:`LUFactor` to skip COLAMD."""
        if self._order is not None:
            return self._order
        return np.asarray(self._lu.perm_c, dtype=np.int64)

    # -- solves -----------------------------------------------------------------

    def ftran(self, b: np.ndarray) -> np.ndarray:
        """Solve ``B x = b`` through the factorization and the eta file.

        ``b`` may be a single vector ``(m,)`` or a batch ``(m, k)`` —
        the batch runs one multi-RHS LU solve and a vectorized eta pass.
        """
        x = self._lu.solve(np.asarray(b, dtype=np.float64))
        if self._order is not None:
            out = np.empty_like(x)
            out[self._order] = x
            x = out
        k = self._eta_count
        if k:
            rows, pivots = self._eta_rows, self._eta_pivots
            indptr = self._eta_indptr
            eidx, eval_ = self._eta_idx, self._eta_val
            if x.ndim == 1:
                for t in range(k):
                    r = rows[t]
                    lo, hi = indptr[t], indptr[t + 1]
                    xr = x[r] / pivots[t]
                    # x -= xr * eta over the eta's nonzeros; the pivot
                    # slot becomes xr.
                    x[eidx[lo:hi]] -= xr * eval_[lo:hi]
                    x[r] = xr
            else:
                for t in range(k):
                    r = rows[t]
                    lo, hi = indptr[t], indptr[t + 1]
                    xr = x[r] / pivots[t]
                    x[eidx[lo:hi]] -= eval_[lo:hi, None] * xr[None, :]
                    x[r] = xr
        return x

    def btran(self, c: np.ndarray) -> np.ndarray:
        """Solve ``B^T y = c`` (eta file applied newest-first)."""
        y = np.asarray(c, dtype=np.float64).copy()
        rows, pivots = self._eta_rows, self._eta_pivots
        indptr, eidx, eval_ = self._eta_indptr, self._eta_idx, self._eta_val
        for t in range(self._eta_count - 1, -1, -1):
            r = rows[t]
            lo, hi = indptr[t], indptr[t + 1]
            yr = y[r]
            # Row r of E^T carries the whole eta vector: solve it last.
            y[r] = 0.0
            y[r] = (yr - eval_[lo:hi] @ y[eidx[lo:hi]]) / pivots[t]
        if self._order is not None:
            y = y[self._order]
        return self._lu.solve(y, trans="T")

    # -- updates ----------------------------------------------------------------

    def can_update(self, w: np.ndarray, r: int) -> bool:
        """Whether replacing basis column ``r`` by a column whose ftran
        image is ``w`` is numerically safe as an eta update."""
        return abs(w[r]) > PIVOT_TOL

    def update(self, w: np.ndarray, r: int) -> int:
        """Record the basis change ``column r := entering`` where
        ``w = ftran(entering column)`` (already through the eta file).
        Returns the number of eta entries appended."""
        if not self.can_update(w, r):
            raise SingularBasisError(
                f"eta pivot {w[r]!r} below tolerance at row {r}"
            )
        idx = np.nonzero(w)[0]
        k = self._eta_count
        if k + 1 >= len(self._eta_rows):  # defensive; interval bounds k
            self._eta_rows = np.resize(self._eta_rows, 2 * len(self._eta_rows))
            self._eta_pivots = np.resize(
                self._eta_pivots, 2 * len(self._eta_pivots)
            )
            self._eta_indptr = np.resize(
                self._eta_indptr, 2 * len(self._eta_indptr)
            )
        lo = self._eta_indptr[k]
        hi = lo + idx.size
        while hi > len(self._eta_idx):
            self._eta_idx = np.resize(self._eta_idx, 2 * len(self._eta_idx))
            self._eta_val = np.resize(self._eta_val, 2 * len(self._eta_val))
        self._eta_idx[lo:hi] = idx
        self._eta_val[lo:hi] = w[idx]
        self._eta_rows[k] = r
        self._eta_pivots[k] = w[r]
        self._eta_indptr[k + 1] = hi
        self._eta_count = k + 1
        self.eta_updates += 1
        self.eta_nnz += int(idx.size)
        return int(idx.size)

    @property
    def should_refactor(self) -> bool:
        return self._eta_count >= self.refactor_interval

    @property
    def eta_count(self) -> int:
        return self._eta_count


def factor_basis(
    columns: Sequence[SparseColumn],
    refactor_interval: int = DEFAULT_REFACTOR_INTERVAL,
) -> Optional[LUFactor]:
    """:class:`LUFactor` for ``columns``, or ``None`` when singular."""
    try:
        return LUFactor(columns, refactor_interval=refactor_interval)
    except SingularBasisError:
        return None


__all__ = [
    "DEFAULT_REFACTOR_INTERVAL",
    "LUFactor",
    "PIVOT_TOL",
    "SingularBasisError",
    "factor_basis",
]
