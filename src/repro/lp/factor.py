"""Sparse LU factorization of a simplex basis, with eta-file updates.

The revised simplex (:mod:`repro.lp.revised`) never forms ``B^-1``.  It
keeps the current basis matrix ``B`` factorized as

    B = B0 · E1 · E2 · ... · Ek

where ``B0`` is a sparse LU factorization (SuperLU via
``scipy.sparse.linalg.splu``) of the basis at the last refactorization
and each ``Ei`` is an *eta matrix*: the identity with one column replaced
by the pivot column of a subsequent basis change (the product form of
the inverse; Forrest–Tomlin keeps the update inside the U factor, the
eta file keeps it outside — same asymptotics for the short update
chains we bound below).

Solves against ``B`` and ``B^T`` are then::

    ftran:  x = Ek^-1 ... E1^-1 (B0^-1 b)       (entering column, x_B)
    btran:  y = B0^-T (E1^-T ... Ek^-T c)       (pricing duals)

Every update appends one eta vector, so solve cost grows linearly with
the chain; :attr:`LUFactor.should_refactor` tells the driver to
refactorize from scratch once the chain reaches ``refactor_interval``
(or immediately when an update pivot is numerically tiny, which is how
degeneracy-induced drift is flushed).

The basis columns are handed over in sparse (indices, values) form
taken straight from the CSC constraint matrix — nothing here ever
materializes a dense ``m × m`` basis.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

#: A sparse column: (row indices, values) aligned arrays.
SparseColumn = Tuple[np.ndarray, np.ndarray]

#: Updates accumulated before :attr:`LUFactor.should_refactor` trips.
DEFAULT_REFACTOR_INTERVAL = 64

#: Pivots smaller than this make an eta update numerically unsafe; the
#: driver refactorizes instead.
PIVOT_TOL = 1e-8


class SingularBasisError(ValueError):
    """The candidate basis matrix is (numerically) singular."""


class LUFactor:
    """LU-factorized simplex basis with product-form eta updates.

    Parameters
    ----------
    columns:
        The ``m`` basis columns as sparse ``(indices, values)`` pairs.
    refactor_interval:
        Eta-chain length at which :attr:`should_refactor` turns true.

    Raises :class:`SingularBasisError` when the basis cannot be
    factorized (structurally or numerically singular).
    """

    def __init__(
        self,
        columns: Sequence[SparseColumn],
        refactor_interval: int = DEFAULT_REFACTOR_INTERVAL,
    ) -> None:
        from scipy.sparse import csc_matrix
        from scipy.sparse.linalg import splu

        m = len(columns)
        self.m = m
        self.refactor_interval = refactor_interval
        #: (pivot row, eta vector) pairs, oldest first.
        self._etas: List[Tuple[int, np.ndarray]] = []
        self.eta_updates = 0

        indptr = np.zeros(m + 1, dtype=np.int64)
        nnz = 0
        for j, (idx, _) in enumerate(columns):
            nnz += len(idx)
            indptr[j + 1] = nnz
        indices = np.empty(nnz, dtype=np.int64)
        data = np.empty(nnz, dtype=np.float64)
        pos = 0
        for idx, vals in columns:
            k = len(idx)
            indices[pos : pos + k] = idx
            data[pos : pos + k] = vals
            pos += k
        matrix = csc_matrix((data, indices, indptr), shape=(m, m))
        try:
            self._lu = splu(matrix.tocsc())
        except (RuntimeError, ValueError) as exc:
            raise SingularBasisError(str(exc)) from exc

    # -- solves -----------------------------------------------------------------

    def ftran(self, b: np.ndarray) -> np.ndarray:
        """Solve ``B x = b`` through the factorization and the eta file."""
        x = self._lu.solve(np.asarray(b, dtype=np.float64))
        for r, eta in self._etas:
            xr = x[r] / eta[r]
            # x -= xr * eta, except the pivot slot which becomes xr.
            x -= xr * eta
            x[r] = xr
        return x

    def btran(self, c: np.ndarray) -> np.ndarray:
        """Solve ``B^T y = c`` (eta file applied newest-first)."""
        y = np.asarray(c, dtype=np.float64).copy()
        for r, eta in reversed(self._etas):
            yr = y[r]
            # Row r of E^T carries the whole eta vector: solve it last.
            y[r] = 0.0
            y[r] = (yr - eta @ y) / eta[r]
        return self._lu.solve(y, trans="T")

    # -- updates ----------------------------------------------------------------

    def can_update(self, w: np.ndarray, r: int) -> bool:
        """Whether replacing basis column ``r`` by a column whose ftran
        image is ``w`` is numerically safe as an eta update."""
        return abs(w[r]) > PIVOT_TOL

    def update(self, w: np.ndarray, r: int) -> None:
        """Record the basis change ``column r := entering`` where
        ``w = ftran(entering column)`` (already through the eta file)."""
        if not self.can_update(w, r):
            raise SingularBasisError(
                f"eta pivot {w[r]!r} below tolerance at row {r}"
            )
        self._etas.append((r, np.array(w, dtype=np.float64)))
        self.eta_updates += 1

    @property
    def should_refactor(self) -> bool:
        return len(self._etas) >= self.refactor_interval

    @property
    def eta_count(self) -> int:
        return len(self._etas)


def factor_basis(
    columns: Sequence[SparseColumn],
    refactor_interval: int = DEFAULT_REFACTOR_INTERVAL,
) -> Optional[LUFactor]:
    """:class:`LUFactor` for ``columns``, or ``None`` when singular."""
    try:
        return LUFactor(columns, refactor_interval=refactor_interval)
    except SingularBasisError:
        return None


__all__ = [
    "DEFAULT_REFACTOR_INTERVAL",
    "LUFactor",
    "PIVOT_TOL",
    "SingularBasisError",
    "factor_basis",
]
