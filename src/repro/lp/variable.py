"""Decision variables for the linear-programming layer.

The LP layer stands in for the ``Flipy`` modelling library the paper's
artifact uses.  A :class:`Variable` is a named continuous decision variable
with optional lower/upper bounds.  Variables are created through
:meth:`repro.lp.model.Model.add_variable`, which assigns each one a dense
column index used by the solver backends.
"""

from __future__ import annotations

import math
from typing import Optional


class Variable:
    """A continuous LP decision variable.

    Variables compare and hash by identity: two variables with the same name
    are still distinct columns.  The owning :class:`~repro.lp.model.Model`
    enforces name uniqueness so solutions can be addressed by name.
    """

    __slots__ = ("name", "lower", "upper", "index")

    def __init__(
        self,
        name: str,
        lower: float = 0.0,
        upper: Optional[float] = None,
        index: int = -1,
    ) -> None:
        if upper is not None and upper < lower:
            raise ValueError(
                f"variable {name!r}: upper bound {upper} < lower bound {lower}"
            )
        self.name = name
        self.lower = float(lower)
        self.upper = None if upper is None else float(upper)
        self.index = index

    # -- arithmetic: delegate to LinExpr ------------------------------------

    def _as_expr(self):
        from .expr import LinExpr

        return LinExpr({self: 1.0})

    def __add__(self, other):
        return self._as_expr() + other

    def __radd__(self, other):
        return self._as_expr() + other

    def __sub__(self, other):
        return self._as_expr() - other

    def __rsub__(self, other):
        return (-1.0) * self._as_expr() + other

    def __mul__(self, other):
        return self._as_expr() * other

    def __rmul__(self, other):
        return self._as_expr() * other

    def __neg__(self):
        return self._as_expr() * -1.0

    # -- comparisons build constraints --------------------------------------

    def __le__(self, other):
        return self._as_expr() <= other

    def __ge__(self, other):
        return self._as_expr() >= other

    def __eq__(self, other):  # type: ignore[override]
        if isinstance(other, Variable):
            return self is other
        return self._as_expr() == other

    def __hash__(self) -> int:
        return id(self)

    def is_binary_like(self) -> bool:
        """True when the variable is bounded to the unit interval."""
        return (
            self.lower == 0.0
            and self.upper is not None
            and math.isclose(self.upper, 1.0)
        )

    def __repr__(self) -> str:
        hi = "inf" if self.upper is None else f"{self.upper:g}"
        return f"Variable({self.name!r}, [{self.lower:g}, {hi}])"
