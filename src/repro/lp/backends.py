"""Backend registry and dispatch for LP solving.

Four interchangeable solvers sit behind one ``solve()`` call:

* ``"scipy"`` / ``"highs"`` — :func:`~repro.lp.scipy_backend.solve_scipy`
  (HiGHS dual simplex), the production default via ``"auto"``;
* ``"simplex"`` / ``"revised-simplex"`` — the built-in sparse revised
  simplex with an LU-factorized basis
  (:func:`~repro.lp.revised.solve_revised`);
* ``"dense-tableau"`` — the historical dense tableau
  (:func:`~repro.lp.simplex.solve_simplex`), kept as the reference
  implementation the other backends are differentially tested against;
* ``"auto"`` — scipy, falling back to the built-in revised simplex when
  scipy is unavailable.

All backends consume the same :class:`~repro.lp.model.StandardForm`
(dense or ``csr_matrix``) and the simplex family shares one
backend-independent basis-label format, so ``warm_basis`` emitted by one
is accepted by the other.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from .model import Model, StandardForm
from .solution import Solution


def _solve_auto(
    model: Model,
    form: Optional[StandardForm] = None,
    warm_basis=None,
) -> Solution:
    """Prefer scipy/HiGHS, fall back to the built-in revised simplex."""
    from .revised import solve_revised
    from .scipy_backend import solve_scipy
    from .solution import SolveStatus

    solution = solve_scipy(model, form=form)
    if solution.status is SolveStatus.ERROR:
        solution = solve_revised(model, form=form, warm_basis=warm_basis)
    return solution


def _solve_scipy(model, form=None, warm_basis=None):
    from .scipy_backend import solve_scipy

    return solve_scipy(model, form=form)


def _solve_revised(model, form=None, warm_basis=None):
    from .revised import solve_revised

    return solve_revised(model, form=form, warm_basis=warm_basis)


def _solve_dense_tableau(model, form=None, warm_basis=None):
    from .simplex import solve_simplex

    return solve_simplex(model, form=form, warm_basis=warm_basis)


def _registry() -> Dict[str, Callable[..., Solution]]:
    return {
        "auto": _solve_auto,
        "scipy": _solve_scipy,
        "highs": _solve_scipy,
        "simplex": _solve_revised,
        "revised-simplex": _solve_revised,
        "dense-tableau": _solve_dense_tableau,
    }


def available_backends() -> tuple:
    return tuple(_registry())


def solve(
    model: Model,
    backend: str = "auto",
    form: Optional[StandardForm] = None,
    warm_basis=None,
) -> Solution:
    """Solve ``model`` with the named backend (``auto`` by default).

    ``form`` (a pre-lowered :class:`StandardForm`) and ``warm_basis`` (a
    previous :attr:`Solution.basis`) are optional fast-path inputs; a
    backend that cannot use one simply ignores it.
    """
    registry = _registry()
    if backend not in registry:
        raise ValueError(
            f"unknown LP backend {backend!r}; choose from {sorted(registry)}"
        )
    return registry[backend](model, form=form, warm_basis=warm_basis)


__all__ = ["solve", "available_backends"]
