"""Backend registry and dispatch for LP solving."""

from __future__ import annotations

from typing import Callable, Dict

from .model import Model
from .solution import Solution


def _solve_auto(model: Model) -> Solution:
    """Prefer scipy/HiGHS, fall back to the built-in simplex."""
    from .scipy_backend import solve_scipy
    from .simplex import solve_simplex
    from .solution import SolveStatus

    solution = solve_scipy(model)
    if solution.status is SolveStatus.ERROR:
        solution = solve_simplex(model)
    return solution


def _registry() -> Dict[str, Callable[[Model], Solution]]:
    from .scipy_backend import solve_scipy
    from .simplex import solve_simplex

    return {
        "auto": _solve_auto,
        "scipy": solve_scipy,
        "highs": solve_scipy,
        "simplex": solve_simplex,
    }


def available_backends() -> tuple:
    return tuple(_registry())


def solve(model: Model, backend: str = "auto") -> Solution:
    """Solve ``model`` with the named backend (``auto`` by default)."""
    registry = _registry()
    if backend not in registry:
        raise ValueError(
            f"unknown LP backend {backend!r}; choose from {sorted(registry)}"
        )
    return registry[backend](model)


__all__ = ["solve", "available_backends"]
