"""Backend registry and dispatch for LP solving.

Four interchangeable solvers sit behind one ``solve()`` call:

* ``"scipy"`` / ``"highs"`` — :func:`~repro.lp.scipy_backend.solve_scipy`
  (HiGHS dual simplex), the production default via ``"auto"``;
* ``"simplex"`` / ``"revised-simplex"`` — the built-in sparse revised
  simplex with an LU-factorized basis
  (:func:`~repro.lp.revised.solve_revised`);
* ``"dense-tableau"`` — the historical dense tableau
  (:func:`~repro.lp.simplex.solve_simplex`), kept as the reference
  implementation the other backends are differentially tested against;
* ``"auto"`` — scipy, falling back to the built-in revised simplex when
  scipy is unavailable.

All backends consume the same :class:`~repro.lp.model.StandardForm`
(dense or ``csr_matrix``) and the simplex family shares one
backend-independent basis-label format, so ``warm_basis`` emitted by one
is accepted by the other.

Presolve (:mod:`repro.lp.presolve`) is orchestrated here, in front of
every backend: above the same 4096-real-column gate that switches the
revised simplex to Dantzig pricing, the standard form is reduced, the
backend solves the reduction, and postsolve lifts the solution (values,
objective, basis labels) back to the original form.  Below the gate
presolve is the identity, keeping the paper-sized byte-identity
contract untouched.  ``presolve=False`` turns it off everywhere;
``presolve="force"`` runs it at any size (the differential-test hook).
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable, Dict, Optional

import numpy as np

from .model import Model, StandardForm
from .solution import Solution

#: Real-column count (structural + slack columns, i.e. ``n + ub rows +
#: finite upper bounds``) at which presolve engages — deliberately the
#: same threshold as the revised simplex's Dantzig gate so the two
#: scale-mode levers switch on together.
_PRESOLVE_MIN_COLUMNS = 4096


def _solve_auto(
    model: Model,
    form: Optional[StandardForm] = None,
    warm_basis=None,
) -> Solution:
    """Prefer scipy/HiGHS, fall back to the built-in revised simplex."""
    from .revised import solve_revised
    from .scipy_backend import solve_scipy
    from .solution import SolveStatus

    solution = solve_scipy(model, form=form)
    if solution.status is SolveStatus.ERROR:
        solution = solve_revised(model, form=form, warm_basis=warm_basis)
    return solution


def _solve_scipy(model, form=None, warm_basis=None):
    from .scipy_backend import solve_scipy

    return solve_scipy(model, form=form)


def _solve_revised(model, form=None, warm_basis=None):
    from .revised import solve_revised

    return solve_revised(model, form=form, warm_basis=warm_basis)


def _solve_dense_tableau(model, form=None, warm_basis=None):
    from .simplex import solve_simplex

    return solve_simplex(model, form=form, warm_basis=warm_basis)


def _registry() -> Dict[str, Callable[..., Solution]]:
    return {
        "auto": _solve_auto,
        "scipy": _solve_scipy,
        "highs": _solve_scipy,
        "simplex": _solve_revised,
        "revised-simplex": _solve_revised,
        "dense-tableau": _solve_dense_tableau,
    }


def available_backends() -> tuple:
    return tuple(_registry())


def _presolve_gate(form: StandardForm) -> bool:
    """Whether ``form`` is scale-tier sized (same count the revised
    simplex uses for its Dantzig gate: structural columns + ub rows +
    one bound row per finite upper bound)."""
    n_real = len(form.variables) + form.a_ub.shape[0]
    n_real += sum(
        1
        for _, hi in form.bounds
        if hi is not None and np.isfinite(hi)
    )
    return n_real >= _PRESOLVE_MIN_COLUMNS


def _attach_presolve(sol: Solution, pres, presolve_s: float) -> Solution:
    sol.presolve_s = presolve_s
    sol.presolve_rows_eliminated = pres.rows_eliminated
    sol.presolve_cols_eliminated = pres.cols_eliminated
    return sol


def solve(
    model: Model,
    backend: str = "auto",
    form: Optional[StandardForm] = None,
    warm_basis=None,
    presolve=True,
) -> Solution:
    """Solve ``model`` with the named backend (``auto`` by default).

    ``form`` (a pre-lowered :class:`StandardForm`) and ``warm_basis`` (a
    previous :attr:`Solution.basis`) are optional fast-path inputs; a
    backend that cannot use one simply ignores it.

    ``presolve=True`` (default) reduces scale-tier-sized forms before
    dispatch (identity below the 4096-real-column gate); ``False``
    never presolves; ``"force"`` presolves at any size.
    """
    registry = _registry()
    if backend not in registry:
        raise ValueError(
            f"unknown LP backend {backend!r}; choose from {sorted(registry)}"
        )
    if presolve not in (True, False, "force"):
        raise ValueError(
            f"presolve must be True, False or 'force', got {presolve!r}"
        )
    if presolve is not False:
        if form is None:
            form = model.to_standard_form()
        if presolve == "force" or _presolve_gate(form):
            from .presolve import presolve_form
            from .solution import SolveStatus

            t0 = perf_counter()
            pres = presolve_form(form)
            presolve_s = perf_counter() - t0
            if pres.status is not None:
                sol = Solution(pres.status, backend="presolve")
                return _attach_presolve(sol, pres, presolve_s)
            if pres.identity:
                sol = registry[backend](
                    model, form=form, warm_basis=warm_basis
                )
                return _attach_presolve(sol, pres, presolve_s)
            reduced_warm = pres.map_warm_basis(warm_basis)
            sol = registry[backend](
                model, form=pres.reduced, warm_basis=reduced_warm
            )
            if sol.status is SolveStatus.OPTIMAL:
                sol = pres.postsolve(sol)
            return _attach_presolve(sol, pres, presolve_s)
    return registry[backend](model, form=form, warm_basis=warm_basis)


__all__ = ["solve", "available_backends"]
