"""A from-scratch two-phase *dense tableau* simplex solver.

This is the "build the substrate" replacement for the off-the-shelf linear
solver the paper uses via Flipy.  It implements the classic dense tableau
simplex with Bland's anti-cycling rule:

* general variable bounds are rewritten into ``x >= 0`` form (shift by the
  lower bound, add a row for a finite upper bound);
* ``>=``/``==`` rows receive artificial variables and phase 1 minimizes
  their sum; an infeasible model is detected by a positive phase-1 optimum;
* phase 2 minimizes the original objective starting from the phase-1 basis.

The implementation favours clarity over speed: it densifies the constraint
matrix and carries the whole ``[A | b]`` tableau through every pivot.  It
is kept as the *reference* built-in backend (``backend="dense-tableau"``)
that the sparse revised simplex (:mod:`repro.lp.revised`, the built-in
default) and the scipy backend are differentially tested against.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from .model import Model, StandardForm
from .solution import Solution, SolveStatus

#: A basis as backend-independent labels; see :attr:`Solution.basis`.
BasisLabels = Tuple[Tuple[str, object], ...]

#: Backend name this module reports on its solutions.
BACKEND_NAME = "dense-tableau"

_EPS = 1e-9
_MAX_ITER_FACTOR = 50

#: Basis size at which :func:`finalize_basic_solution` switches from the
#: dense LAPACK solve to a sparse LU.  Both built-in backends route
#: through this function with the same basis, so the switch point being
#: shared is what keeps their reports bit-identical at every size.
_SPARSE_FINALIZE_MIN = 2048


def solve_unconstrained(form: StandardForm, c: np.ndarray, backend: str):
    """Solve a model with no rows: every variable sits at whichever finite
    bound its cost prefers (shared by the dense tableau and the revised
    simplex so both report float-identical assignments).

    The unboundedness test and the value rule use the same epsilon and
    the same ``np.isfinite`` finiteness check, so a cost within
    ``(-eps, 0)`` against an infinite upper bound stays at its lower
    bound instead of leaking ``inf`` (or ``None``) into the assignment.
    """
    values = {}
    for i, var in enumerate(form.variables):
        hi = form.bounds[i][1]
        hi_finite = hi is not None and np.isfinite(hi)
        if c[i] < -_EPS:
            if not hi_finite:
                return Solution(SolveStatus.UNBOUNDED, backend=backend)
            values[var] = float(hi)
        else:
            values[var] = float(form.bounds[i][0])
    obj = float(sum(c[v.index] * values[v] for v in form.variables))
    return Solution(
        SolveStatus.OPTIMAL,
        obj + form.objective_offset,
        values,
        backend,
        basis=(),
    )


def finalize_basic_solution(
    basis_matrix: np.ndarray, rhs: np.ndarray
) -> Optional[np.ndarray]:
    """Recompute the basic solution ``B xb = rhs`` fresh from the original
    column data of the final basis.

    Both built-in backends call this right before extracting a solution.
    Each algorithm reaches the optimal basis carrying its own accumulated
    roundoff (tableau elimination here, LU ftran + eta updates in the
    revised simplex); re-solving once from the untouched column data
    means two backends that agree on the *basis* also agree on every
    reported value and on the objective bit-for-bit.  Returns ``None``
    (caller keeps its iterate) when the recomputation fails.

    ``basis_matrix`` may be dense or ``scipy.sparse``.  Below
    :data:`_SPARSE_FINALIZE_MIN` rows the solve is the dense LAPACK one
    (densifying a sparse input); at and above it, a sparse LU — a dense
    ``m³`` solve at scale-tier sizes would cost more than the whole
    simplex run.  The branch depends only on ``m``, never on the input's
    storage, so both backends always take the same one.
    """
    from scipy import sparse

    m = basis_matrix.shape[0]
    rhs = np.asarray(rhs, dtype=np.float64)
    if m >= _SPARSE_FINALIZE_MIN:
        try:
            mat = (
                basis_matrix.tocsc()
                if sparse.issparse(basis_matrix)
                else sparse.csc_matrix(basis_matrix)
            )
            xb = sparse.linalg.splu(mat).solve(rhs)
        except (RuntimeError, ValueError, MemoryError):
            return None
    else:
        if sparse.issparse(basis_matrix):
            basis_matrix = basis_matrix.toarray()
        try:
            xb = np.linalg.solve(basis_matrix, rhs)
        except np.linalg.LinAlgError:
            return None
    if not np.all(np.isfinite(xb)):
        return None
    # Flush roundoff-scale negativity exactly as the iterations do.
    np.copyto(xb, 0.0, where=(xb < 0) & (xb > -1e-9))
    return xb


class _Tableau:
    """Dense simplex tableau ``[A | b]`` with a cost row."""

    def __init__(self, a: np.ndarray, b: np.ndarray, c: np.ndarray) -> None:
        m, n = a.shape
        self.m, self.n = m, n
        self.table = np.zeros((m + 1, n + 1))
        self.table[:m, :n] = a
        self.table[:m, n] = b
        self.table[m, :n] = c
        self.basis: List[int] = [0] * m
        self.iterations = 0

    def price_out(self) -> None:
        """Make reduced costs of basic columns zero."""
        m, n = self.m, self.n
        for row, col in enumerate(self.basis):
            coef = self.table[m, col]
            if abs(coef) > _EPS:
                self.table[m, :] -= coef * self.table[row, :]

    def pivot(self, row: int, col: int) -> None:
        table = self.table
        table[row, :] /= table[row, col]
        # Eliminate the pivot column from every other row carrying it.
        # Row selection and per-element arithmetic match the historical
        # scalar loop exactly; rows are processed in blocks so the
        # factor×pivot-row outer product never materializes at full
        # height on scale-tier tableaus.
        factors = table[:, col].copy()
        factors[row] = 0.0
        rows_upd = np.nonzero(np.abs(factors) > _EPS)[0]
        if rows_upd.size:
            pivot_row = table[row, :]
            block = max(1, (1 << 22) // max(table.shape[1], 1))
            for lo in range(0, rows_upd.size, block):
                sel = rows_upd[lo : lo + block]
                table[sel, :] -= factors[sel, None] * pivot_row[None, :]
        self.basis[row] = col
        self.iterations += 1

    def run(self, max_iter: int) -> str:
        """Run simplex iterations until optimal/unbounded/iteration limit."""
        m, n = self.m, self.n
        while self.iterations < max_iter:
            cost_row = self.table[m, :n]
            # Bland's rule: entering variable = smallest index with
            # negative reduced cost.
            negative = np.nonzero(cost_row < -_EPS)[0]
            if negative.size == 0:
                return "optimal"
            entering = int(negative[0])
            col = self.table[:m, entering]
            rhs = self.table[:m, n]
            # Candidate rows vectorized, then the exact fuzzy tie-break
            # chain replayed over the (small) subset — skipped rows never
            # set ``best`` in the historical full loop either.
            best_row, best_ratio = -1, np.inf
            basis = self.basis
            for i in np.nonzero(col > _EPS)[0].tolist():
                ratio = rhs[i] / col[i]
                if ratio < best_ratio - _EPS or (
                    abs(ratio - best_ratio) <= _EPS
                    and (best_row < 0 or basis[i] < basis[best_row])
                ):
                    best_ratio = ratio
                    best_row = i
            if best_row < 0:
                return "unbounded"
            self.pivot(best_row, entering)
        return "iteration_limit"


def _densify(a, n: int) -> np.ndarray:
    """A fresh dense copy of a (possibly sparse) constraint block,
    written in bounded row chunks so no second full-size transient is
    alive at scale-tier sizes."""
    if hasattr(a, "toarray"):
        m = a.shape[0]
        out = np.zeros((m, n))
        if m:
            csr = a.tocsr()
            step = max(1, (1 << 24) // max(n, 1))
            for lo in range(0, m, step):
                out[lo : lo + step, :] = csr[lo : lo + step].toarray()
        return out
    return a.copy() if a.size else np.zeros((0, n))


def _prepare(form: StandardForm):
    """Rewrite the standard form into ``A x (<=,==) b`` with ``x >= 0``.

    Returns (a_ub, b_ub, a_eq, b_eq, c, shift, n) where original variable i
    is recovered as ``x[i] + shift[i]``.
    """
    n = len(form.variables)
    shift = np.zeros(n)
    # The cached lowering may hand us sparse matrices; the tableau is
    # dense, so densify up front.
    a_ub = _densify(form.a_ub, n)
    b_ub = form.b_ub.copy() if form.b_ub.size else np.zeros(0)
    a_eq = _densify(form.a_eq, n)
    b_eq = form.b_eq.copy() if form.b_eq.size else np.zeros(0)
    c = form.c.copy()

    extra_rows: List[np.ndarray] = []
    extra_rhs: List[float] = []
    for i, (lo, hi) in enumerate(form.bounds):
        if lo == -np.inf or lo is None:
            raise ValueError("simplex backend requires finite lower bounds")
        shift[i] = lo
        if hi is not None and np.isfinite(hi):
            row = np.zeros(n)
            row[i] = 1.0
            extra_rows.append(row)
            extra_rhs.append(hi - lo)
    # Shift rhs by A @ shift.
    if a_ub.shape[0]:
        b_ub = b_ub - a_ub @ shift
    if a_eq.shape[0]:
        b_eq = b_eq - a_eq @ shift
    if extra_rows:
        a_ub = np.vstack([a_ub, np.array(extra_rows)]) if a_ub.size else np.array(extra_rows)
        b_ub = np.concatenate([b_ub, np.array(extra_rhs)])
    return a_ub, b_ub, a_eq, b_eq, c, shift, n


def solve_simplex(
    model: Model,
    form: Optional[StandardForm] = None,
    warm_basis: Optional[BasisLabels] = None,
) -> Solution:
    """Solve a :class:`Model` with the built-in two-phase simplex.

    ``form`` lets callers reuse an already-lowered standard form.  With
    ``warm_basis`` (a previous :attr:`Solution.basis`), the solver tries
    to start phase 2 directly from that basis — falling back to the
    ordinary two-phase cold start whenever the labels no longer resolve
    to a feasible basis of the current model.
    """
    if form is None:
        form = model.to_standard_form()
    try:
        a_ub, b_ub, a_eq, b_eq, c, shift, n = _prepare(form)
    except ValueError:
        return Solution(SolveStatus.ERROR, backend=BACKEND_NAME)

    m_ub, m_eq = a_ub.shape[0], a_eq.shape[0]
    m = m_ub + m_eq
    if m == 0:
        return solve_unconstrained(form, c, BACKEND_NAME)

    # Build the combined constraint matrix with slacks for <= rows and
    # artificials for every row (slack column suffices as the initial basic
    # variable when its rhs is non-negative, otherwise flip the row).
    n_slack = m_ub
    rows = np.zeros((m, n + n_slack))
    rhs = np.zeros(m)
    if m_ub:
        rows[:m_ub, :n] = a_ub
        rows[np.arange(m_ub), n + np.arange(m_ub)] = 1.0
        rhs[:m_ub] = b_ub
    if m_eq:
        rows[m_ub:, :n] = a_eq
        rhs[m_ub:] = b_eq
    a_ub = a_eq = None  # free the pre-assembly copies at scale-tier sizes
    # Normalize negative rhs.
    flip = rhs < 0
    if np.any(flip):
        rows[flip, :] *= -1.0
        rhs[flip] *= -1.0

    # Slack-column semantics for basis labels: ub rows are the model's
    # constraint rows followed by one upper-bound row per finite-bounded
    # variable (in variable order), see _prepare.
    m_ub_con = form.a_ub.shape[0]
    bound_row_vars = [
        var.name
        for i, var in enumerate(form.variables)
        if form.bounds[i][1] is not None and np.isfinite(form.bounds[i][1])
    ]
    max_iter = _MAX_ITER_FACTOR * (m + n + n_slack + m)

    if warm_basis is not None:
        warm = _attempt_warm(
            warm_basis,
            rows,
            rhs,
            c,
            shift,
            form,
            n,
            n_slack,
            m_ub_con,
            bound_row_vars,
            max_iter,
        )
        if warm is not None:
            warm.phase1_skipped = True
            return warm

    # Identify rows whose slack can serve as the initial basis (slack
    # coefficient +1 after normalization); then crash singleton
    # structural columns onto the rest; only leftovers get artificials.
    basis: List[int] = []
    needs_artificial: List[int] = []
    for i in range(m):
        if i < m_ub and rows[i, n + i] > 0.5:
            basis.append(n + i)
        else:
            needs_artificial.append(i)
            basis.append(-1)

    # Crash: a structural column with exactly one nonzero, positive
    # after normalization, is a valid basic column for its row (rhs is
    # >= 0).  Same rule, same ascending-column order as the revised
    # simplex (`_crash_singletons`) — that parity keeps the two
    # built-ins on the same pivot path.  The crash row is rescaled to
    # make the column a unit column, but only inside the tableau; the
    # `rows` array stays untouched for the finalizing basis re-solve.
    crash_rows: List[Tuple[int, float]] = []
    if needs_artificial:
        nz_r, nz_c = np.nonzero(rows[:, :n])
        counts = np.bincount(nz_c, minlength=n)
        singleton = counts[nz_c] == 1
        pending = set(needs_artificial)
        s_rows, s_cols = nz_r[singleton], nz_c[singleton]
        for k in np.argsort(s_cols, kind="stable").tolist():
            i, j = int(s_rows[k]), int(s_cols[k])
            value = rows[i, j]
            if value > _EPS and i in pending:
                basis[i] = j
                pending.discard(i)
                crash_rows.append((i, float(value)))
        needs_artificial = sorted(pending)

    n_art = len(needs_artificial)
    total = n + n_slack + n_art
    max_iter = _MAX_ITER_FACTOR * (m + total)

    # Phase 1.
    if n_art:
        full = np.zeros((m, total))
        full[:, : n + n_slack] = rows
        for k, i in enumerate(needs_artificial):
            full[i, n + n_slack + k] = 1.0
            basis[i] = n + n_slack + k
        c1 = np.zeros(total)
        c1[n + n_slack :] = 1.0
        tab = _Tableau(full, rhs, c1)
        full = None
        tab.basis = list(basis)
        for i, value in crash_rows:
            tab.table[i, :] /= value
        tab.price_out()
        status = tab.run(max_iter)
        if status != "optimal":
            return Solution(SolveStatus.ERROR, backend=BACKEND_NAME)
        # Feasibility check: every artificial basic variable must be ~ 0.
        art_value = sum(
            tab.table[row, total]
            for row, col in enumerate(tab.basis)
            if col >= n + n_slack
        )
        if art_value > 1e-6:
            return Solution(SolveStatus.INFEASIBLE, backend=BACKEND_NAME)
        # Drive remaining artificial variables out of the basis if possible.
        for row in range(m):
            if tab.basis[row] >= n + n_slack:
                pivot_col = -1
                for j in range(n + n_slack):
                    if abs(tab.table[row, j]) > _EPS:
                        pivot_col = j
                        break
                if pivot_col >= 0:
                    tab.pivot(row, pivot_col)
        work = tab.table[:m, : n + n_slack]
        work_rhs = tab.table[:m, total]
        basis = [b if b < n + n_slack else -1 for b in tab.basis]
        # Rows still basic in an artificial are redundant zero rows; keep
        # them with a harmless slack basis if any, else drop.
        keep = [i for i in range(m) if basis[i] >= 0]
        work = work[keep]
        work_rhs = work_rhs[keep]
        basis = [basis[i] for i in keep]
        iterations1 = tab.iterations
        source_rows, source_rhs = rows[keep], rhs[keep]
    else:
        work = rows
        work_rhs = rhs
        iterations1 = 0
        source_rows, source_rhs = rows, rhs

    # Phase 2.
    c2 = np.zeros(n + n_slack)
    c2[:n] = c
    tab2 = _Tableau(work, work_rhs, c2)
    tab2.basis = list(basis)
    if not n_art:
        # No phase 1 ran: apply the crash-row rescale here (when phase 1
        # ran, its tableau was rescaled and ``work`` inherited it).
        for i, value in crash_rows:
            tab2.table[i, :] /= value
    tab2.price_out()
    status = tab2.run(max_iter)
    if status == "unbounded":
        sol = Solution(SolveStatus.UNBOUNDED, backend=BACKEND_NAME)
        sol.phase1_iterations = iterations1
        sol.phase1_skipped = iterations1 == 0
        return sol
    if status != "optimal":
        return Solution(SolveStatus.ERROR, backend=BACKEND_NAME)
    sol = _extract(
        tab2,
        c,
        shift,
        form,
        n,
        m_ub_con,
        bound_row_vars,
        iterations1,
        source_rows,
        source_rhs,
    )
    sol.phase1_iterations = iterations1
    sol.phase1_skipped = iterations1 == 0
    return sol


def _basis_labels(
    basis_cols: List[int],
    n: int,
    form: StandardForm,
    m_ub_con: int,
    bound_row_vars: List[str],
) -> BasisLabels:
    labels: List[Tuple[str, object]] = []
    for col in basis_cols:
        if col < n:
            labels.append(("v", form.variables[col].name))
        elif col - n < m_ub_con:
            labels.append(("s", col - n))
        else:
            labels.append(("b", bound_row_vars[col - n - m_ub_con]))
    return tuple(labels)


def _extract(
    tab: _Tableau,
    c: np.ndarray,
    shift: np.ndarray,
    form: StandardForm,
    n: int,
    m_ub_con: int,
    bound_row_vars: List[str],
    prior_iterations: int,
    source_rows: Optional[np.ndarray] = None,
    source_rhs: Optional[np.ndarray] = None,
) -> Solution:
    x = np.zeros(tab.n)
    xb = (
        finalize_basic_solution(source_rows[:, tab.basis], source_rhs)
        if source_rows is not None
        else None
    )
    if xb is not None:
        x[tab.basis] = xb
    else:
        for row, col in enumerate(tab.basis):
            x[col] = tab.table[row, tab.n]
    values = {
        var: float(x[i] + shift[i]) for i, var in enumerate(form.variables)
    }
    objective = float(c @ x[:n]) + float(c @ shift) + form.objective_offset
    sol = Solution(SolveStatus.OPTIMAL, objective, values, BACKEND_NAME)
    sol.iterations = prior_iterations + tab.iterations
    sol.basis = _basis_labels(tab.basis, n, form, m_ub_con, bound_row_vars)
    return sol


def _attempt_warm(
    warm_basis: BasisLabels,
    rows: np.ndarray,
    rhs: np.ndarray,
    c: np.ndarray,
    shift: np.ndarray,
    form: StandardForm,
    n: int,
    n_slack: int,
    m_ub_con: int,
    bound_row_vars: List[str],
    max_iter: int,
) -> Optional[Solution]:
    """Try to start phase 2 directly from a previous solve's basis.

    Resolves the labels against the current column layout, crashes the
    tableau with one dense solve, and runs phase 2.  Returns ``None``
    (caller falls back to the two-phase cold start) when any label no
    longer resolves, the basis matrix is singular, or the basic point is
    infeasible for the current constraints.
    """
    m = rows.shape[0]
    if len(warm_basis) != m:
        return None
    name_to_col: Dict[str, int] = {
        var.name: i for i, var in enumerate(form.variables)
    }
    bound_col: Dict[str, int] = {
        name: n + m_ub_con + k for k, name in enumerate(bound_row_vars)
    }
    cols: List[int] = []
    for kind, key in warm_basis:
        if kind == "v":
            col = name_to_col.get(key)
        elif kind == "s":
            col = n + key if isinstance(key, int) and 0 <= key < m_ub_con else None
        elif kind == "b":
            col = bound_col.get(key)
        else:
            return None
        if col is None:
            return None
        cols.append(col)
    if len(set(cols)) != m:
        return None
    basis_matrix = rows[:, cols]
    try:
        xb = np.linalg.solve(basis_matrix, rhs)
        reduced = np.linalg.solve(basis_matrix, rows)
    except np.linalg.LinAlgError:
        return None
    if not np.all(np.isfinite(xb)) or np.any(xb < 0):
        return None
    c2 = np.zeros(n + n_slack)
    c2[:n] = c
    tab = _Tableau(reduced, xb, c2)
    tab.basis = list(cols)
    tab.price_out()
    status = tab.run(max_iter)
    if status == "unbounded":
        return Solution(SolveStatus.UNBOUNDED, backend=BACKEND_NAME)
    if status != "optimal":
        return None
    return _extract(
        tab, c, shift, form, n, m_ub_con, bound_row_vars, 0, rows, rhs
    )


__all__ = ["solve_simplex"]
