"""LP presolve: deterministic reductions over the CSR standard form.

:func:`presolve_form` shrinks a :class:`~repro.lp.model.StandardForm`
before any backend sees it, and returns a :class:`PresolvedProblem`
whose :meth:`~PresolvedProblem.postsolve` reconstructs the **full**
primal solution — every original variable's value, the objective
recomputed from the original costs, and (best-effort) full-problem
basis labels — from the reduced solve.  The reduction pipeline, in
order:

* **fixed columns** (``lower == upper``): substituted into every
  right-hand side and removed;
* **empty columns**: fixed at whichever finite bound their cost
  prefers.  A negatively-priced empty column with an infinite upper
  bound is deliberately *kept* so the backend reaches its own
  UNBOUNDED verdict only after phase 1 has had its say — exactly the
  status order an un-presolved solve reports;
* **empty rows**: dropped when satisfiable, INFEASIBLE when the
  residual right-hand side is negative beyond the backends' phase-1
  tolerance;
* **singleton rows** (one nonzero): folded into the variable's bounds
  when the tightened interval stays consistent, else left to the
  backend so borderline-infeasible inputs keep their un-presolved
  status;
* **twin rows** — the SherLock-shaped reduction that carries the
  scale-tier speedup: ``<=`` rows identical except for one *private*
  column (a column with a single nonzero anywhere in the system,
  ``[0, inf)`` bounds, positive cost, negative row coefficient — the
  ``max0`` auxiliary of a Mostly-Protected window row) are merged
  into their lowest-index representative, whose auxiliary inherits
  the group's summed cost.  Exact: with cost ``c_i > 0`` every
  ``aux_i`` sits at ``max(0, (core·x - b)/(-a))`` at any optimum, so
  the group's objective contribution is ``(sum c_i)`` times that one
  envelope value — the representative's;
* **duplicate/dominated rows**: coefficient-identical ``<=`` rows
  keep only the smallest right-hand side;
* **equilibration scaling**: power-of-two row/column scales (exact in
  floating point; the identity on SherLock's ``±1`` matrices).

Postsolve's basis reconstruction labels each eliminated row/column
(`("s", row)` slack for dropped redundant rows, the private auxiliary
or the slack for twin rows depending on whether the group's envelope
is active, bound-row slacks for eliminated columns); it returns
``None`` — downstream warm starts then simply cold-start — whenever a
reduction with no exact label mapping ran (bound tightening, dropped
equality rows, an artificial in the reduced basis).

Presolve is orchestrated by :func:`repro.lp.backends.solve` and gated
like Dantzig pricing: identity-off below the 4096-real-column gate so
the paper-sized byte-identity contract is untouched, on above it
(``presolve="force"`` is the test hook that runs it at any size).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from .model import StandardForm
from .solution import Solution, SolveStatus
from .variable import Variable

_EPS = 1e-9
#: Presolve-time infeasibility threshold, matching the backends'
#: phase-1 artificial tolerance (``art_value > 1e-6``) so borderline
#: inputs get the same status with and without presolve.
_FEAS_TOL = 1e-6

# Column dispositions.
_KEEP, _FIXED, _TWIN = 0, 1, 2
# Row dispositions for dropped ub rows: basic slack (empty, redundant
# singleton, duplicate) vs. twin (auxiliary or slack, decided at
# postsolve from the representative's value).
_ROW_KEEP, _ROW_SLACK, _ROW_TWIN = 0, 1, 2


def _csr(a, n: int):
    from scipy.sparse import csr_matrix, issparse

    if issparse(a):
        return a.tocsr()
    a = np.asarray(a, dtype=np.float64)
    if a.size:
        return csr_matrix(a)
    return csr_matrix((a.shape[0] if a.ndim == 2 else 0, n))


def _segment_abs_max(data: np.ndarray, indptr: np.ndarray) -> np.ndarray:
    """Per-segment ``max(|data|)`` of a CSR/CSC axis, zeros for empty
    segments (no densification)."""
    out = np.zeros(len(indptr) - 1)
    lens = np.diff(indptr)
    nz = lens > 0
    if data.size and np.any(nz):
        out[nz] = np.maximum.reduceat(np.abs(data), indptr[:-1][nz])
    return out


def _pow2_scales(abs_max: np.ndarray) -> np.ndarray:
    """Nearest power-of-two normalizers (1.0 where a segment is empty).

    Powers of two make every scale multiplication exact in binary
    floating point, so scaling never perturbs reported values."""
    scales = np.ones_like(abs_max)
    nz = abs_max > 0
    scales[nz] = np.exp2(-np.rint(np.log2(abs_max[nz])))
    return scales


@dataclass
class PresolvedProblem:
    """A reduced standard form plus the exact postsolve mapping."""

    form: StandardForm
    reduced: StandardForm
    #: INFEASIBLE detected during reduction; ``None`` means solve the
    #: reduced problem.
    status: Optional[SolveStatus] = None
    #: No reduction applied — callers should solve the original form
    #: directly (skipping postsolve keeps the solve bit-identical).
    identity: bool = False
    rows_eliminated: int = 0
    cols_eliminated: int = 0
    #: Per-original-column disposition and metadata.
    col_action: Optional[np.ndarray] = None
    col_value: Optional[np.ndarray] = None
    twin_rep: Dict[int, int] = field(default_factory=dict)
    kept_cols: List[int] = field(default_factory=list)
    #: Per-original-ub-row disposition; dropped twin rows map to their
    #: own private auxiliary column.
    row_action: Optional[np.ndarray] = None
    twin_row_aux: Dict[int, int] = field(default_factory=dict)
    kept_rows_ub: List[int] = field(default_factory=list)
    #: Power-of-two column scales over reduced columns (``None`` when
    #: scaling was the identity).
    col_scale: Optional[np.ndarray] = None
    #: Whether eliminations kept an exact basis-label mapping.
    basis_ok: bool = True

    # -- postsolve ---------------------------------------------------------

    def _full_values(self, solution: Solution) -> np.ndarray:
        red_vars = self.reduced.variables
        x_red = np.fromiter(
            (solution.values.get(v, 0.0) for v in red_vars),
            np.float64,
            len(red_vars),
        )
        if self.col_scale is not None:
            x_red = x_red * self.col_scale
        pos = {j: k for k, j in enumerate(self.kept_cols)}
        n = len(self.form.variables)
        x = np.empty(n)
        for j in range(n):
            action = self.col_action[j]
            if action == _KEEP:
                x[j] = x_red[pos[j]]
            elif action == _FIXED:
                x[j] = self.col_value[j]
            else:  # _TWIN: the representative's envelope value
                x[j] = x_red[pos[self.twin_rep[j]]]
        return x

    def _map_basis_back(
        self, basis, x_full: np.ndarray
    ) -> Optional[tuple]:
        if not self.basis_ok or basis is None:
            return None
        form = self.form
        labels: List[Tuple[str, object]] = []
        for kind, key in basis:
            if kind == "s":
                if not (
                    isinstance(key, int)
                    and 0 <= key < len(self.kept_rows_ub)
                ):
                    return None
                labels.append(("s", self.kept_rows_ub[key]))
            elif kind in ("v", "b"):
                labels.append((kind, key))
            else:  # an artificial stuck in the reduced basis
                return None
        # Dropped ub rows: slack, or the twin's own auxiliary when the
        # group's envelope is active (the representative sits above 0).
        for r, action in enumerate(self.row_action):
            if action == _ROW_SLACK:
                labels.append(("s", r))
            elif action == _ROW_TWIN:
                aux = self.twin_row_aux[r]
                rep = self.twin_rep[aux]
                if x_full[rep] > _EPS:
                    labels.append(("v", form.variables[aux].name))
                else:
                    labels.append(("s", r))
        # Eliminated columns with a finite original upper bound had a
        # bound row in the full problem: the variable itself is basic
        # there when it sits above its lower bound, else the slack.
        for j, action in enumerate(self.col_action):
            if action == _KEEP:
                continue
            lo, hi = form.bounds[j]
            if hi is None or not np.isfinite(hi):
                continue
            name = form.variables[j].name
            if x_full[j] > lo + _EPS:
                labels.append(("v", name))
            else:
                labels.append(("b", name))
        a_ub = form.a_ub
        m_ub_con = a_ub.shape[0]
        n_bound = sum(
            1
            for _, hi in form.bounds
            if hi is not None and np.isfinite(hi)
        )
        m_eq = form.a_eq.shape[0]
        if len(labels) != m_ub_con + n_bound + m_eq:
            return None
        return tuple(labels)

    def postsolve(self, solution: Solution) -> Solution:
        """Lift a reduced-problem solution back to the original form."""
        if self.identity or solution.status is not SolveStatus.OPTIMAL:
            return solution
        x = self._full_values(solution)
        c = np.asarray(self.form.c, dtype=np.float64)
        values = {
            var: float(x[i])
            for i, var in enumerate(self.form.variables)
        }
        objective = float(c @ x) + self.form.objective_offset
        sol = Solution(
            SolveStatus.OPTIMAL, objective, values, solution.backend
        )
        sol.iterations = solution.iterations
        sol.basis = self._map_basis_back(solution.basis, x)
        sol.factorizations = solution.factorizations
        sol.refactorizations = solution.refactorizations
        sol.factorize_s = solution.factorize_s
        sol.ftran_btran_s = solution.ftran_btran_s
        sol.pricing_s = solution.pricing_s
        sol.eta_len = solution.eta_len
        sol.phase1_iterations = solution.phase1_iterations
        sol.phase1_skipped = solution.phase1_skipped
        sol.dual_iterations = solution.dual_iterations
        return sol

    # -- warm-basis forward mapping ---------------------------------------

    def map_warm_basis(self, warm_basis) -> Optional[tuple]:
        """Translate full-problem basis labels (a previous round's
        postsolved basis) into reduced-problem labels, dropping labels
        for eliminated rows/columns.  The result is usually shorter
        than the reduced row count — the dual re-solve path completes
        it deterministically."""
        if warm_basis is None or self.identity:
            return warm_basis
        name_action: Dict[str, int] = {}
        for j, var in enumerate(self.form.variables):
            name_action[var.name] = self.col_action[j]
        row_pos = {r: k for k, r in enumerate(self.kept_rows_ub)}
        out: List[Tuple[str, object]] = []
        for kind, key in warm_basis:
            if kind == "s":
                pos = row_pos.get(key)
                if pos is not None:
                    out.append(("s", pos))
            elif kind in ("v", "b"):
                if name_action.get(key, _FIXED) == _KEEP:
                    out.append((kind, key))
        return tuple(out) if out else None


def _passthrough(form: StandardForm) -> PresolvedProblem:
    return PresolvedProblem(form=form, reduced=form, identity=True)


def _infeasible(form: StandardForm) -> PresolvedProblem:
    return PresolvedProblem(
        form=form, reduced=form, status=SolveStatus.INFEASIBLE
    )


def presolve_form(form: StandardForm) -> PresolvedProblem:
    """Run the reduction pipeline over ``form``.

    Deterministic: the same form always produces the same reduced
    problem, byte for byte.  Forms the pipeline cannot reason about
    (non-finite lower bounds, no variables) pass through untouched.
    """
    n = len(form.variables)
    if n == 0:
        return _passthrough(form)
    lb = np.array([b[0] for b in form.bounds], dtype=np.float64)
    ub = np.array(
        [np.inf if b[1] is None else b[1] for b in form.bounds],
        dtype=np.float64,
    )
    if not np.all(np.isfinite(lb)):
        return _passthrough(form)

    a_ub = _csr(form.a_ub, n)
    a_eq = _csr(form.a_eq, n)
    m_ub = a_ub.shape[0]
    m_eq = a_eq.shape[0]
    b_ub = np.asarray(form.b_ub, dtype=np.float64).copy()
    b_eq = np.asarray(form.b_eq, dtype=np.float64).copy()
    c = np.asarray(form.c, dtype=np.float64)
    c_work = c.copy()

    col_action = np.zeros(n, dtype=np.int8)
    col_value = np.zeros(n)
    basis_ok = True

    # -- fixed columns ----------------------------------------------------
    fixed = lb == ub
    if np.any(lb > ub):
        over = lb - ub
        if np.any(over > _FEAS_TOL):
            return _infeasible(form)
    if np.any(fixed):
        col_action[fixed] = _FIXED
        col_value[fixed] = lb[fixed]
        sub = np.where(fixed, lb, 0.0)
        if m_ub:
            b_ub -= a_ub @ sub
        if m_eq:
            b_eq -= a_eq @ sub

    # -- column statistics over the whole system --------------------------
    from scipy.sparse import vstack

    stacked = vstack([a_ub, a_eq], format="csc") if m_eq else a_ub.tocsc()
    col_nnz = np.diff(stacked.indptr)
    single_row = np.full(n, -1, dtype=np.int64)
    single_val = np.zeros(n)
    singles = np.nonzero(col_nnz == 1)[0]
    for j in singles.tolist():
        p = stacked.indptr[j]
        single_row[j] = stacked.indices[p]
        single_val[j] = stacked.data[p]

    # -- empty columns ----------------------------------------------------
    for j in np.nonzero(col_nnz == 0)[0].tolist():
        if col_action[j] != _KEEP:
            continue
        if c[j] >= -_EPS:
            col_action[j] = _FIXED
            col_value[j] = lb[j]
        elif np.isfinite(ub[j]):
            col_action[j] = _FIXED
            col_value[j] = ub[j]
        # else: keep — the backend reports UNBOUNDED only after its
        # own phase 1, preserving the un-presolved status order.

    # -- ub row scan: empty / singleton rows ------------------------------
    row_action = np.zeros(m_ub, dtype=np.int8)
    indptr, indices, data = a_ub.indptr, a_ub.indices, a_ub.data
    entries: List[Optional[Tuple[np.ndarray, np.ndarray]]] = [None] * m_ub
    for r in range(m_ub):
        cols = indices[indptr[r] : indptr[r + 1]]
        vals = data[indptr[r] : indptr[r + 1]]
        live = (vals != 0.0) & (col_action[cols] != _FIXED)
        cols, vals = cols[live], vals[live]
        entries[r] = (cols, vals)
        if cols.size == 0:
            if b_ub[r] < -_FEAS_TOL:
                return _infeasible(form)
            row_action[r] = _ROW_SLACK
            if b_ub[r] < 0:
                basis_ok = False  # slack would sit marginally negative
        elif cols.size == 1:
            j = int(cols[0])
            a = float(vals[0])
            b = float(b_ub[r])
            if a > _EPS:
                new_ub = b / a
                if new_ub >= ub[j]:
                    row_action[r] = _ROW_SLACK  # redundant
                elif new_ub >= lb[j]:
                    ub[j] = new_ub
                    row_action[r] = _ROW_SLACK
                    basis_ok = False  # synthesized bound row
                # else: interval empty — let the backend decide
            elif a < -_EPS:
                new_lb = b / a
                if new_lb <= lb[j]:
                    row_action[r] = _ROW_SLACK  # redundant
                elif new_lb <= ub[j]:
                    lb[j] = new_lb
                    row_action[r] = _ROW_SLACK
                    basis_ok = False

    # -- twin-row merge ---------------------------------------------------
    twin_rep: Dict[int, int] = {}
    twin_row_aux: Dict[int, int] = {}
    kept_now = np.nonzero(row_action == _ROW_KEEP)[0]
    eligible = (
        (col_action == _KEEP)
        & (col_nnz == 1)
        & (lb == 0.0)
        & ~np.isfinite(ub)
        & (c_work > 0.0)
        & (single_val < -_EPS)
        & (single_row < m_ub)
    )
    groups: Dict[tuple, List[Tuple[int, int]]] = {}
    for r in kept_now.tolist():
        cols, vals = entries[r]
        priv = cols[eligible[cols]]
        if priv.size != 1:
            continue
        j = int(priv[0])
        core = cols != j
        key = (
            cols[core].tobytes(),
            vals[core].tobytes(),
            float(b_ub[r]),
            float(single_val[j]),
        )
        groups.setdefault(key, []).append((r, j))
    for members in groups.values():
        if len(members) < 2:
            continue
        rep_row, rep_aux = members[0]
        total = sum(c_work[j] for _, j in members)
        c_work[rep_aux] = total
        for r, j in members[1:]:
            row_action[r] = _ROW_TWIN
            col_action[j] = _TWIN
            twin_rep[j] = rep_aux
            twin_row_aux[r] = j

    # -- duplicate / dominated rows ---------------------------------------
    dup_groups: Dict[tuple, List[int]] = {}
    for r in np.nonzero(row_action == _ROW_KEEP)[0].tolist():
        cols, vals = entries[r]
        dup_groups.setdefault(
            (cols.tobytes(), vals.tobytes()), []
        ).append(r)
    for members in dup_groups.values():
        if len(members) < 2:
            continue
        rhs = [float(b_ub[r]) for r in members]
        keeper = members[int(np.argmin(rhs))]
        for r in members:
            if r != keeper:
                row_action[r] = _ROW_SLACK

    # -- empty equality rows ----------------------------------------------
    eq_keep = np.ones(m_eq, dtype=bool)
    if m_eq:
        eq_live = np.zeros(m_eq, dtype=np.int64)
        ei, ej = a_eq.indptr, a_eq.indices
        ed = a_eq.data
        for r in range(m_eq):
            cols = ej[ei[r] : ei[r + 1]]
            vals = ed[ei[r] : ei[r + 1]]
            eq_live[r] = int(
                np.count_nonzero(
                    (vals != 0.0) & (col_action[cols] != _FIXED)
                )
            )
        for r in np.nonzero(eq_live == 0)[0].tolist():
            if abs(b_eq[r]) > _FEAS_TOL:
                return _infeasible(form)
            eq_keep[r] = False
            basis_ok = False  # the full problem puts an artificial here

    # -- assemble the reduced form ----------------------------------------
    kept_rows_ub = np.nonzero(row_action == _ROW_KEEP)[0]
    kept_cols = np.nonzero(col_action == _KEEP)[0]
    rows_eliminated = int(m_ub - kept_rows_ub.size) + int(
        m_eq - np.count_nonzero(eq_keep)
    )
    cols_eliminated = int(n - kept_cols.size)
    if rows_eliminated == 0 and cols_eliminated == 0:
        # Nothing structural to gain; skip scaling too so the solve is
        # bit-identical to the un-presolved path.
        return _passthrough(form)

    a_ub_red = a_ub[kept_rows_ub].tocsc()[:, kept_cols].tocsr()
    b_ub_red = b_ub[kept_rows_ub]
    if m_eq:
        a_eq_red = a_eq[eq_keep].tocsc()[:, kept_cols].tocsr()
        b_eq_red = b_eq[eq_keep]
    else:
        a_eq_red = _csr(np.zeros((0, 0)), kept_cols.size)
        b_eq_red = np.zeros(0)
    c_red = c_work[kept_cols]
    lb_red = lb[kept_cols]
    ub_red = ub[kept_cols]

    # -- equilibration scaling (powers of two, exact) ---------------------
    col_scale: Optional[np.ndarray] = None
    both = (
        vstack([a_ub_red, a_eq_red], format="csr")
        if a_eq_red.shape[0]
        else a_ub_red
    )
    r_scale = _pow2_scales(_segment_abs_max(both.data, both.indptr))
    if np.any(r_scale != 1.0):
        from scipy.sparse import diags

        m_red_ub = a_ub_red.shape[0]
        a_ub_red = (diags(r_scale[:m_red_ub]) @ a_ub_red).tocsr()
        b_ub_red = b_ub_red * r_scale[:m_red_ub]
        if a_eq_red.shape[0]:
            a_eq_red = (diags(r_scale[m_red_ub:]) @ a_eq_red).tocsr()
            b_eq_red = b_eq_red * r_scale[m_red_ub:]
        both = (
            vstack([a_ub_red, a_eq_red], format="csc")
            if a_eq_red.shape[0]
            else a_ub_red.tocsc()
        )
    else:
        both = both.tocsc()
    c_scale = _pow2_scales(_segment_abs_max(both.data, both.indptr))
    if np.any(c_scale != 1.0):
        from scipy.sparse import diags

        a_ub_red = (a_ub_red @ diags(c_scale)).tocsr()
        if a_eq_red.shape[0]:
            a_eq_red = (a_eq_red @ diags(c_scale)).tocsr()
        c_red = c_red * c_scale
        lb_red = lb_red / c_scale
        ub_red = ub_red / c_scale
        col_scale = c_scale

    offset = form.objective_offset
    fixed_mask = col_action == _FIXED
    if np.any(fixed_mask):
        offset += float(c[fixed_mask] @ col_value[fixed_mask])

    variables_red = [
        Variable(
            form.variables[j].name,
            float(lb_red[k]),
            None if not np.isfinite(ub_red[k]) else float(ub_red[k]),
            index=k,
        )
        for k, j in enumerate(kept_cols.tolist())
    ]
    reduced = StandardForm(
        c=c_red,
        a_ub=a_ub_red,
        b_ub=b_ub_red,
        a_eq=a_eq_red,
        b_eq=b_eq_red,
        bounds=[(v.lower, v.upper) for v in variables_red],
        variables=variables_red,
        objective_offset=offset,
    )
    return PresolvedProblem(
        form=form,
        reduced=reduced,
        rows_eliminated=rows_eliminated,
        cols_eliminated=cols_eliminated,
        col_action=col_action,
        col_value=col_value,
        twin_rep=twin_rep,
        kept_cols=kept_cols.tolist(),
        row_action=row_action,
        twin_row_aux=twin_row_aux,
        kept_rows_ub=kept_rows_ub.tolist(),
        col_scale=col_scale,
        basis_ok=basis_ok,
    )


__all__ = ["PresolvedProblem", "presolve_form"]
