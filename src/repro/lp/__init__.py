"""Linear-programming substrate.

A small modelling layer (variables, linear expressions, constraints,
``max(0, .)`` / ``|.|`` objective lowering) with interchangeable solver
backends: a sparse revised simplex over an LU-factorized basis (the
built-in default), the historical dense tableau (the reference
implementation), and scipy's HiGHS.

This package stands in for the ``Flipy`` library plus external LP solver
used by the SherLock artifact.
"""

from .backends import available_backends, solve
from .expr import EQ, GE, LE, Constraint, LinExpr, as_expr
from .model import Model, ModelCheckpoint, StandardForm, StandardFormCache
from .revised import solve_revised
from .simplex import solve_simplex
from .scipy_backend import solve_scipy
from .solution import Solution, SolveStatus
from .variable import Variable

__all__ = [
    "Constraint",
    "EQ",
    "GE",
    "LE",
    "LinExpr",
    "Model",
    "ModelCheckpoint",
    "Solution",
    "SolveStatus",
    "StandardForm",
    "StandardFormCache",
    "Variable",
    "as_expr",
    "available_backends",
    "solve",
    "solve_revised",
    "solve_scipy",
    "solve_simplex",
]
