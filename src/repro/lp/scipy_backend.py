"""scipy/HiGHS backend for the LP layer.

This is the production backend: SherLock's models routinely have a few
thousand variables and constraints, and HiGHS solves them in milliseconds.
The from-scratch :mod:`repro.lp.simplex` backend cross-checks it in tests.
"""

from __future__ import annotations

import numpy as np

from .model import Model
from .solution import Solution, SolveStatus


def solve_scipy(model: Model) -> Solution:
    """Solve a :class:`Model` using :func:`scipy.optimize.linprog` (HiGHS)."""
    try:
        from scipy.optimize import linprog
        from scipy.sparse import csr_matrix
    except ImportError:  # pragma: no cover - scipy is a hard dependency
        return Solution(SolveStatus.ERROR, backend="scipy")

    form = model.to_standard_form()
    n = len(form.variables)
    if n == 0:
        return Solution(
            SolveStatus.OPTIMAL, form.objective_offset, {}, "scipy"
        )

    a_ub = csr_matrix(form.a_ub) if form.a_ub.size else None
    a_eq = csr_matrix(form.a_eq) if form.a_eq.size else None
    bounds = [
        (lo, hi if hi is not None else np.inf) for lo, hi in form.bounds
    ]
    result = linprog(
        c=form.c,
        A_ub=a_ub,
        b_ub=form.b_ub if form.a_ub.size else None,
        A_eq=a_eq,
        b_eq=form.b_eq if form.a_eq.size else None,
        bounds=bounds,
        # Dual simplex returns vertex solutions, which keeps SherLock's
        # probability variables integral instead of interior-point mixes.
        method="highs-ds",
    )
    status = {
        0: SolveStatus.OPTIMAL,
        2: SolveStatus.INFEASIBLE,
        3: SolveStatus.UNBOUNDED,
    }.get(result.status, SolveStatus.ERROR)
    if status is not SolveStatus.OPTIMAL:
        return Solution(status, backend="scipy")

    values = {var: float(result.x[i]) for i, var in enumerate(form.variables)}
    sol = Solution(
        SolveStatus.OPTIMAL,
        float(result.fun) + form.objective_offset,
        values,
        "scipy",
    )
    sol.iterations = int(getattr(result, "nit", 0) or 0)
    return sol


__all__ = ["solve_scipy"]
