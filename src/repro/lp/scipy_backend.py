"""scipy/HiGHS backend for the LP layer.

This is the production backend: SherLock's models routinely have a few
thousand variables and constraints, and HiGHS solves them in milliseconds.
The from-scratch :mod:`repro.lp.simplex` backend cross-checks it in tests.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .model import Model, StandardForm
from .solution import Solution, SolveStatus


def solve_scipy(
    model: Model, form: Optional[StandardForm] = None
) -> Solution:
    """Solve a :class:`Model` using :func:`scipy.optimize.linprog` (HiGHS).

    ``form`` lets callers pass an already-lowered standard form (the
    incremental encoder reuses its cached prefix lowering this way).
    """
    try:
        from scipy.optimize import linprog
        from scipy.sparse import csr_matrix, issparse
    except ImportError:  # pragma: no cover - scipy is a hard dependency
        return Solution(SolveStatus.ERROR, backend="scipy")

    if form is None:
        form = model.to_standard_form()
    n = len(form.variables)
    if n == 0:
        return Solution(
            SolveStatus.OPTIMAL, form.objective_offset, {}, "scipy"
        )

    def to_csr(a):
        # The cached lowering hands us csr directly; the dense path
        # converts here.  Either way, absent when there are no rows.
        if issparse(a):
            return a if a.shape[0] else None
        return csr_matrix(a) if a.size else None

    a_ub = to_csr(form.a_ub)
    a_eq = to_csr(form.a_eq)
    bounds = [
        (lo, hi if hi is not None else np.inf) for lo, hi in form.bounds
    ]
    result = linprog(
        c=form.c,
        A_ub=a_ub,
        b_ub=form.b_ub if a_ub is not None else None,
        A_eq=a_eq,
        b_eq=form.b_eq if a_eq is not None else None,
        bounds=bounds,
        # Dual simplex returns vertex solutions, which keeps SherLock's
        # probability variables integral instead of interior-point mixes.
        method="highs-ds",
    )
    status = {
        0: SolveStatus.OPTIMAL,
        2: SolveStatus.INFEASIBLE,
        3: SolveStatus.UNBOUNDED,
    }.get(result.status, SolveStatus.ERROR)
    if status is not SolveStatus.OPTIMAL:
        return Solution(status, backend="scipy")

    values = dict(zip(form.variables, result.x.tolist()))
    sol = Solution(
        SolveStatus.OPTIMAL,
        float(result.fun) + form.objective_offset,
        values,
        "scipy",
    )
    sol.iterations = int(getattr(result, "nit", 0) or 0)
    return sol


__all__ = ["solve_scipy"]
