"""Scoring SherLock's inference against application ground truth.

Implements the paper's misclassification taxonomy (Table 2):

* **Syncs** — inferred operations in the app's ground truth.
* **Data Racy** — false syncs on fields with genuine data races (the
  flag-looking accesses that "should be marked volatile").
* **Instr. Errors** — false syncs caused by the Observer's skip-heuristic
  hiding a genuine sync method: the inferred op touches state protected
  by a hidden method.
* **Not Sync** — all remaining false positives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Set, Tuple

from ..core.pipeline import SherlockReport
from ..sim.program import Application
from ..trace.optypes import SyncOp


@dataclass
class ClassifiedInference:
    """One app's Table-2 row."""

    app_id: str
    correct: Set[SyncOp] = field(default_factory=set)
    data_racy: Set[SyncOp] = field(default_factory=set)
    instr_errors: Set[SyncOp] = field(default_factory=set)
    not_sync: Set[SyncOp] = field(default_factory=set)
    missed: Set[SyncOp] = field(default_factory=set)

    @property
    def inferred_total(self) -> int:
        return (
            len(self.correct) + len(self.data_racy)
            + len(self.instr_errors) + len(self.not_sync)
        )

    @property
    def false_total(self) -> int:
        return self.inferred_total - len(self.correct)


def classify(app: Application, report: SherlockReport) -> ClassifiedInference:
    """Score one app's final inference against its ground truth."""
    gt = app.ground_truth
    out = ClassifiedInference(app.app_id)
    hidden_protected_fields = {
        fieldname
        for fieldname, protector in gt.protected_by.items()
        if protector in gt.hidden_sync_methods
    }
    for sync in report.final.syncs:
        if gt.is_true_sync(sync):
            out.correct.add(sync)
        elif sync.op.optype.is_memory and sync.op.name in gt.racy_fields:
            out.data_racy.add(sync)
        elif (
            sync.op.optype.is_memory
            and sync.op.name in hidden_protected_fields
        ):
            out.instr_errors.add(sync)
        else:
            out.not_sync.add(sync)
    out.missed = set(gt.syncs) - report.final.syncs
    return out


def unique_sync_count(groups: Iterable[Set[SyncOp]]) -> int:
    """Unique synchronizations across applications (paper counts system
    APIs like Monitor::Enter once even when several apps use them)."""
    seen: Set[SyncOp] = set()
    for group in groups:
        seen.update(group)
    return len(seen)


def precision(
    classified: Iterable[ClassifiedInference],
) -> Tuple[int, int, float]:
    """(#correct-unique, #total-unique, precision) across apps."""
    rows = list(classified)
    correct = unique_sync_count(c.correct for c in rows)
    total = unique_sync_count(
        c.correct | c.data_racy | c.instr_errors | c.not_sync for c in rows
    )
    return correct, total, (correct / total if total else 0.0)


def missed_by_category(
    app: Application, classified: ClassifiedInference
) -> Dict[str, int]:
    """Missed true syncs bucketed by their ground-truth subcategory,
    with hidden-method misses counted as instrumentation errors."""
    gt = app.ground_truth
    out: Dict[str, int] = {}
    for sync in classified.missed:
        if sync.op.name in gt.hidden_sync_methods:
            category = "instr_error"
        else:
            category = gt.syncs[sync].subcategory
        out[category] = out.get(category, 0) + 1
    return out


__all__ = [
    "ClassifiedInference",
    "classify",
    "missed_by_category",
    "precision",
    "unique_sync_count",
]
