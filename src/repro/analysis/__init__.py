"""Experiment harness: scoring, table rendering, per-table regenerators."""

from .metrics import (
    ClassifiedInference,
    classify,
    missed_by_category,
    precision,
    unique_sync_count,
)
from .tables import TableResult

__all__ = [
    "ClassifiedInference",
    "TableResult",
    "classify",
    "missed_by_category",
    "precision",
    "unique_sync_count",
]
