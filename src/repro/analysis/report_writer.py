"""Generate a full reproduction report (all tables/figures) as markdown."""

from __future__ import annotations

import io
import time
from typing import Iterable, List, Optional, TextIO

from .experiments import (
    figure4,
    overhead,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
    table89,
    tsvd_enhance,
)
from .tables import TableResult

#: (section title, callable(app_ids) -> TableResult)
_SECTIONS = [
    ("Table 1 — applications", lambda a: table1.run(a)),
    ("Table 2 — inferred results", lambda a: table2.run(a)[0]),
    ("Table 3 — race detection", lambda a: table3.run(a)[0]),
    ("Table 4 — FP/FN breakdown", lambda a: table4.run(a)),
    ("Table 5 — hypothesis ablation", lambda a: table5.run(a)),
    ("Table 6 — lambda sensitivity", lambda a: table6.run(a)),
    ("Table 7 — Near sensitivity", lambda a: table7.run(a)),
    ("Figure 4 — Perturber/feedback", lambda a: figure4.run(a)),
    ("Tables 8/9 — inferred listings", lambda a: table89.run(a)),
    ("TSVD enhancement", lambda a: tsvd_enhance.run(a)),
    ("Overhead", lambda a: overhead.run(a)),
]


def write_report(
    fp: TextIO, app_ids: Optional[Iterable[str]] = None
) -> List[str]:
    """Regenerate every experiment and write a markdown report.

    Returns the section titles written (for progress display/testing).
    """
    fp.write("# SherLock reproduction report\n\n")
    fp.write(
        f"Generated {time.strftime('%Y-%m-%d %H:%M:%S')} by "
        f"`repro.analysis.report_writer`.\n\n"
    )
    written = []
    for title, runner in _SECTIONS:
        result: TableResult = runner(app_ids)
        fp.write(f"## {title}\n\n```\n{result.render()}\n```\n\n")
        written.append(title)
    return written


def report_markdown(app_ids: Optional[Iterable[str]] = None) -> str:
    buffer = io.StringIO()
    write_report(buffer, app_ids)
    return buffer.getvalue()


__all__ = ["report_markdown", "write_report"]
