"""Table 4 — breakdown of false positives / negatives (§5.5)."""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from ...core import SherlockConfig
from ...racedet import attribute_false_races, detect_races, sherlock_spec
from ..metrics import classify, missed_by_category
from ..tables import TableResult
from .common import run_all, select_apps

#: Map ground-truth subcategories onto the paper's Table-4 buckets.
_BUCKETS = {
    "instr_error": "Instr. Errors",
    "double_role": "Double Roles",
    "dispose": "Dispose",
    "static_ctor": "Static Ctr.",
}

PAPER = {
    "Instr. Errors": (5, 3, 17),
    "Double Roles": (2, 1, 15),
    "Dispose": (5, 4, 11),
    "Static Ctr.": (4, 2, 3),
    "Others": (2, 2, 5),
}


def run(
    app_ids: Optional[Iterable[str]] = None,
    config: Optional[SherlockConfig] = None,
    seed: int = 0,
) -> TableResult:
    apps = select_apps(app_ids)
    reports = run_all(apps, config)
    false_sync: Dict[str, int] = {}
    missed_sync: Dict[str, int] = {}
    false_races: Dict[str, int] = {}

    for app in apps:
        report = reports[app.app_id]
        result = classify(app, report)
        # False syncs bucketed by the category of the sync they displace.
        gt = app.ground_truth
        for sync in result.instr_errors:
            false_sync["Instr. Errors"] = false_sync.get("Instr. Errors", 0) + 1
        for sync in result.not_sync:
            # Which missed sync does this false one stand in for?
            bucket = "Others"
            if sync.op.optype.is_memory:
                protector = gt.protected_by.get(sync.op.name)
                if protector is not None:
                    info = next(
                        (i for s, i in gt.syncs.items()
                         if s.op.name == protector),
                        None,
                    )
                    if info is not None:
                        bucket = _BUCKETS.get(info.subcategory, "Others")
            false_sync[bucket] = false_sync.get(bucket, 0) + 1
        # Missed syncs by category.
        for category, count in missed_by_category(app, result).items():
            bucket = _BUCKETS.get(category, "Others")
            missed_sync[bucket] = missed_sync.get(bucket, 0) + count
        # False races attributed to missed-sync categories.
        races = detect_races(app, sherlock_spec(report.final), seed=seed)
        for category, count in attribute_false_races(app, races).items():
            bucket = _BUCKETS.get(category, "Others")
            false_races[bucket] = false_races.get(bucket, 0) + count

    table = TableResult(
        "Table 4: breakdown of false positives/negatives"
        " (measured | paper)",
        ["Category", "#False Sync", "#Missed Sync", "#False Races",
         "paper(FS/MS/FR)"],
    )
    buckets = ["Instr. Errors", "Double Roles", "Dispose", "Static Ctr.",
               "Others"]
    totals = [0, 0, 0]
    for bucket in buckets:
        fs = false_sync.get(bucket, 0)
        ms = missed_sync.get(bucket, 0)
        fr = false_races.get(bucket, 0)
        totals[0] += fs
        totals[1] += ms
        totals[2] += fr
        table.add_row(
            bucket, fs, ms, fr, "/".join(str(p) for p in PAPER[bucket])
        )
    table.add_row("Total", *totals, "17/12/51")
    return table


__all__ = ["PAPER", "run"]
