"""Table 7 — sensitivity of the Near window (§5.6)."""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from ...core import SherlockConfig
from ..metrics import classify, precision
from ..tables import TableResult
from .common import run_all, select_apps

PAPER = {0.01: (47, 85), 1.0: (122, 155), 100.0: (117, 183)}

DEFAULT_NEARS = (0.01, 1.0, 100.0)


def run(
    app_ids: Optional[Iterable[str]] = None,
    nears: Sequence[float] = DEFAULT_NEARS,
    base_config: Optional[SherlockConfig] = None,
) -> TableResult:
    base = base_config or SherlockConfig()
    table = TableResult(
        "Table 7: sensitivity of Near (measured | paper)",
        ["Near (s)", "#correct", "#total", "paper(C/T)"],
    )
    for near in nears:
        config = base.without(near=near)
        apps = select_apps(app_ids)
        reports = run_all(apps, config)
        classified = [classify(a, reports[a.app_id]) for a in apps]
        correct, total, _ = precision(classified)
        paper = PAPER.get(near, ("-", "-"))
        table.add_row(near, correct, total, f"{paper[0]}/{paper[1]}")
    return table


__all__ = ["DEFAULT_NEARS", "PAPER", "run"]
