"""Table 6 — sensitivity of λ (§5.6)."""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from ...core import SherlockConfig
from ..metrics import classify, precision
from ..tables import TableResult
from .common import run_all, select_apps

PAPER = {
    0.1: (118, 157), 0.2: (122, 155), 0.4: (115, 156), 0.6: (111, 147),
    0.8: (111, 144), 1.0: (110, 142), 5.0: (76, 95), 10.0: (67, 85),
    50.0: (29, 36), 100.0: (19, 29),
}

DEFAULT_LAMBDAS = (0.1, 0.2, 0.4, 0.6, 0.8, 1.0, 5.0, 10.0, 50.0, 100.0)


def run(
    app_ids: Optional[Iterable[str]] = None,
    lambdas: Sequence[float] = DEFAULT_LAMBDAS,
    base_config: Optional[SherlockConfig] = None,
) -> TableResult:
    base = base_config or SherlockConfig()
    table = TableResult(
        "Table 6: sensitivity of lambda (measured | paper)",
        ["lambda", "#correct", "#total", "paper(C/T)"],
    )
    for lam in lambdas:
        config = base.without(lam=lam)
        apps = select_apps(app_ids)
        reports = run_all(apps, config)
        classified = [classify(a, reports[a.app_id]) for a in apps]
        correct, total, _ = precision(classified)
        paper = PAPER.get(lam, ("-", "-"))
        table.add_row(lam, correct, total, f"{paper[0]}/{paper[1]}")
    return table


__all__ = ["DEFAULT_LAMBDAS", "PAPER", "run"]
