"""Table 2 — SherLock inferred results after 3 rounds."""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from ...core import SherlockConfig
from ..metrics import ClassifiedInference, classify, unique_sync_count
from ..tables import TableResult
from .common import run_all, select_apps

#: Paper's Table 2 for side-by-side display.
PAPER_ROWS = {
    "App-1": (46, 10, 2, 7),
    "App-2": (6, 0, 0, 0),
    "App-3": (8, 0, 2, 0),
    "App-4": (20, 0, 1, 0),
    "App-5": (14, 2, 0, 2),
    "App-6": (14, 0, 0, 2),
    "App-7": (19, 4, 0, 0),
    "App-8": (6, 0, 0, 1),
}


def run(
    app_ids: Optional[Iterable[str]] = None,
    config: Optional[SherlockConfig] = None,
) -> Tuple[TableResult, Dict[str, ClassifiedInference]]:
    apps = select_apps(app_ids)
    reports = run_all(apps, config)
    table = TableResult(
        "Table 2: SherLock inferred results after 3 rounds"
        " (measured | paper)",
        ["ID", "Syncs", "Data Racy", "Instr. Errors", "Not Sync",
         "paper(S/DR/IE/NS)"],
    )
    classified: Dict[str, ClassifiedInference] = {}
    for app in apps:
        result = classify(app, reports[app.app_id])
        classified[app.app_id] = result
        paper = PAPER_ROWS.get(app.app_id, ("-",) * 4)
        table.add_row(
            app.app_id,
            len(result.correct),
            len(result.data_racy),
            len(result.instr_errors),
            len(result.not_sync),
            "/".join(str(p) for p in paper),
        )
    total = sum(len(c.correct) for c in classified.values())
    unique = unique_sync_count(c.correct for c in classified.values())
    table.add_row(
        "Sum",
        f"{total} ({unique})",
        sum(len(c.data_racy) for c in classified.values()),
        sum(len(c.instr_errors) for c in classified.values()),
        sum(len(c.not_sync) for c in classified.values()),
        "133 (122)/16/5/12",
    )
    table.notes.append(
        "paper columns: Syncs / Data Racy / Instr. Errors / Not Sync"
    )
    return table, classified


__all__ = ["PAPER_ROWS", "run"]
