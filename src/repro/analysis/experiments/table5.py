"""Table 5 — inference with or without certain hypotheses (§5.6)."""

from __future__ import annotations

from typing import Iterable, Optional

from ...core import SherlockConfig, TABLE5_ABLATIONS
from ..metrics import classify, precision
from ..tables import TableResult
from .common import run_all, select_apps

PAPER = {
    "SherLock": (122, 155, "79%"),
    "w/o Mostly are Protected": (0, 0, "n/a"),
    "w/o Synchronizations are Rare": (112, 271, "41%"),
    "w/o Acq-Time Varies": (106, 152, "70%"),
    "w/o Mostly are Paired": (101, 158, "64%"),
    "w/o Read-Acq & Write-Rel": (100, 152, "66%"),
    "w/o Single Role": (111, 156, "71%"),
}


def run(
    app_ids: Optional[Iterable[str]] = None,
    base_config: Optional[SherlockConfig] = None,
) -> TableResult:
    base = base_config or SherlockConfig()
    table = TableResult(
        "Table 5: inference with or without certain hypotheses"
        " (measured | paper)",
        ["Setting", "#Correct", "#Total", "Precision",
         "paper(C/T/P)"],
    )
    for label, changes in TABLE5_ABLATIONS.items():
        config = base.without(**changes)
        apps = select_apps(app_ids)
        reports = run_all(apps, config)
        classified = [classify(a, reports[a.app_id]) for a in apps]
        correct, total, prec = precision(classified)
        paper = PAPER[label]
        table.add_row(
            label,
            correct,
            total,
            f"{prec:.0%}" if total else "n/a",
            f"{paper[0]}/{paper[1]}/{paper[2]}",
        )
    return table


__all__ = ["PAPER", "run"]
