"""Table 1 — applications in benchmarks.

Carries the paper's reported metadata (C# LoC, GitHub stars, test counts)
next to this reproduction's measured app sizes.
"""

from __future__ import annotations

import inspect
from typing import Iterable, Optional

from ..tables import TableResult
from .common import select_apps


def run(app_ids: Optional[Iterable[str]] = None) -> TableResult:
    table = TableResult(
        "Table 1: Applications in benchmarks (paper-reported | measured)",
        ["ID", "Name", "LoC(paper)", "#Stars", "#Tests(paper)",
         "LoC(repro)", "#Tests(repro)"],
    )
    for app in select_apps(app_ids):
        module = inspect.getmodule(type(app.make_context)) or None
        # Measure the size of the app's defining module.
        builder_module = inspect.getmodule(app.tests[0].body)
        loc = 0
        if builder_module is not None:
            source = inspect.getsource(builder_module)
            loc = len(
                [l for l in source.splitlines() if l.strip()
                 and not l.strip().startswith("#")]
            )
        table.add_row(
            app.app_id,
            app.name,
            app.info.loc_reported,
            app.info.stars_reported,
            app.info.tests_reported,
            loc,
            len(app.tests),
        )
    return table


__all__ = ["run"]
