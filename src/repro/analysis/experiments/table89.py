"""Tables 8/9 — listings of inferred synchronizations per application."""

from __future__ import annotations

from typing import Iterable, Optional

from ...core import SherlockConfig
from ...trace.optypes import Role
from ..tables import TableResult
from .common import run_all, select_apps


def run(
    app_ids: Optional[Iterable[str]] = None,
    config: Optional[SherlockConfig] = None,
) -> TableResult:
    apps = select_apps(app_ids)
    reports = run_all(apps, config)
    table = TableResult(
        "Tables 8/9: inferred synchronizations per application",
        ["App", "Role", "Synchronization", "Description"],
    )
    for app in apps:
        gt = app.ground_truth
        final = reports[app.app_id].final
        for role, group in (
            ("Release", sorted(final.releases, key=lambda s: s.op.name)),
            ("Acquire", sorted(final.acquires, key=lambda s: s.op.name)),
        ):
            for sync in group:
                info = gt.syncs.get(sync)
                description = (
                    info.description if info is not None
                    else "(not a true synchronization)"
                )
                table.add_row(app.app_id, role, sync.op.display(), description)
    return table


__all__ = ["run"]
