"""§5.6 overhead — tracing, solving and delay-injection costs.

The paper reports per-test overheads of 24%–800% (tracing 170%, solving
94%, delays +156%).  Here the same phases are wall-clock timed on the
simulator: a bare run (instrumentation off), a traced run, the solve, and
a traced run with a delay plan.
"""

from __future__ import annotations

import time
from typing import Iterable, Optional

from ...core import Observer, ObservationStore, SherlockConfig, WindowExtractor, infer
from ...core.perturber import build_delay_plan
from ...sim.runner import RunOptions, run_application
from ..tables import TableResult
from .common import select_apps


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def run(
    app_ids: Optional[Iterable[str]] = None,
    config: Optional[SherlockConfig] = None,
) -> TableResult:
    config = config or SherlockConfig()
    table = TableResult(
        "Overhead per phase (measured; paper: tracing 170%,"
        " solving 94%, delays +156%)",
        ["App", "bare (s)", "traced (s)", "solve (s)", "delayed (s)",
         "tracing ovh", "solving ovh", "delay ovh"],
    )
    for app in select_apps(app_ids):
        observer = Observer(config)

        # Bare: instrumentation drops every event.
        bare_options = RunOptions(
            seed=config.seed, run_id=0, event_filter=lambda e: False
        )
        _, bare_t = _timed(lambda: run_application(app, bare_options))

        executions, traced_t = _timed(
            lambda: observer.observe_round(app, 0, {})
        )
        store = ObservationStore()
        extractor = WindowExtractor(config.near, config.window_cap)

        def ingest_and_solve():
            for execution in executions:
                store.ingest_run(
                    execution.log, extractor.extract(execution.log)
                )
            return infer(store, config)

        inference, solve_t = _timed(ingest_and_solve)
        plan = build_delay_plan(inference, config)
        _, delayed_t = _timed(lambda: observer.observe_round(app, 1, plan))

        table.add_row(
            app.app_id,
            f"{bare_t:.3f}",
            f"{traced_t:.3f}",
            f"{solve_t:.3f}",
            f"{delayed_t:.3f}",
            f"{(traced_t - bare_t) / bare_t:+.0%}" if bare_t else "n/a",
            f"{solve_t / bare_t:+.0%}" if bare_t else "n/a",
            f"{(delayed_t - traced_t) / traced_t:+.0%}" if traced_t else "n/a",
        )
    return table


__all__ = ["run"]
