"""Shared helpers for the experiment regenerators."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ...apps.registry import all_applications, get_application
from ...core import Sherlock, SherlockConfig, SherlockReport
from ...sim.program import Application


def select_apps(app_ids: Optional[Iterable[str]] = None) -> List[Application]:
    """Fresh application instances (all 8 by default)."""
    if app_ids is None:
        return all_applications()
    return [get_application(app_id) for app_id in app_ids]


def run_all(
    apps: List[Application], config: Optional[SherlockConfig] = None
) -> Dict[str, SherlockReport]:
    """Run the SherLock pipeline on every app with one config."""
    config = config or SherlockConfig()
    return {app.app_id: Sherlock(app, config).run() for app in apps}


__all__ = ["run_all", "select_apps"]
