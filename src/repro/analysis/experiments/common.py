"""Shared helpers for the experiment regenerators.

All tables and figures run applications through one shared
:class:`~repro.runtime.engine.ExecutionRuntime`, so a ``--workers``/
``--cache`` choice made once (e.g. on the CLI) parallelizes and memoizes
every regenerator, and sweeps that reuse a ``(app, seed, delay plan)``
combination never re-execute its traces.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ...apps.registry import all_applications, get_application
from ...core import Sherlock, SherlockConfig, SherlockReport
from ...runtime import ExecutionRuntime
from ...sim.program import Application

#: Runtime shared by every regenerator when the caller doesn't pass one.
_default_runtime: Optional[ExecutionRuntime] = None


def set_default_runtime(runtime: Optional[ExecutionRuntime]) -> None:
    """Install (or clear) the runtime the regenerators share."""
    global _default_runtime
    _default_runtime = runtime


def default_runtime() -> ExecutionRuntime:
    """The shared runtime, creating a serial cache-less one on demand."""
    global _default_runtime
    if _default_runtime is None:
        _default_runtime = ExecutionRuntime()
    return _default_runtime


def select_apps(app_ids: Optional[Iterable[str]] = None) -> List[Application]:
    """Fresh application instances (all 8 by default)."""
    if app_ids is None:
        return all_applications()
    return [get_application(app_id) for app_id in app_ids]


def run_all(
    apps: List[Application],
    config: Optional[SherlockConfig] = None,
    runtime: Optional[ExecutionRuntime] = None,
) -> Dict[str, SherlockReport]:
    """Run the SherLock pipeline on every app with one config."""
    config = config or SherlockConfig()
    runtime = runtime or default_runtime()
    return {
        app.app_id: Sherlock(app, config, runtime=runtime).run()
        for app in apps
    }


__all__ = [
    "default_runtime",
    "run_all",
    "select_apps",
    "set_default_runtime",
]
