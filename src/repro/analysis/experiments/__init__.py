"""One regenerator module per paper table/figure (see DESIGN.md index)."""

from . import (
    common,
    figure4,
    overhead,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
    table89,
    tsvd_enhance,
)

__all__ = [
    "common",
    "figure4",
    "overhead",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "table7",
    "table89",
    "tsvd_enhance",
]
