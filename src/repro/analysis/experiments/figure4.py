"""Figure 4 — correctly inferred syncs vs #runs under Perturber and
feedback settings (§5.6).

Curves:

* **SherLock** — full system;
* **w/o delay injection** — passive observation only;
* **w/o accumulation** — each round solved from its own observations;
* **w/o race removal** — racy pairs keep their Mostly-Protected terms.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from ...core import Sherlock, SherlockConfig
from ...runtime import ExecutionRuntime
from ..tables import TableResult
from .common import default_runtime, select_apps

SETTINGS = {
    "SherLock": {},
    "w/o delay injection": {"enable_delay_injection": False},
    "w/o accumulation": {"accumulate_across_runs": False},
    "w/o race removal": {"enable_race_removal": False},
}


def run(
    app_ids: Optional[Iterable[str]] = None,
    rounds: int = 4,
    base_config: Optional[SherlockConfig] = None,
    runtime: Optional[ExecutionRuntime] = None,
) -> TableResult:
    base = base_config or SherlockConfig()
    runtime = runtime or default_runtime()
    table = TableResult(
        f"Figure 4: correctly inferred unique syncs per round"
        f" (rounds 1..{rounds})",
        ["Setting"] + [f"run {i + 1}" for i in range(rounds)],
    )
    for label, changes in SETTINGS.items():
        config = base.without(rounds=rounds, **changes)
        apps = select_apps(app_ids)
        per_round: List[set] = [set() for _ in range(rounds)]
        for app in apps:
            report = Sherlock(app, config, runtime=runtime).run()
            gt = app.ground_truth
            for idx, round_result in enumerate(report.rounds):
                correct = {
                    s
                    for s in round_result.inference.syncs
                    if gt.is_true_sync(s)
                }
                per_round[idx].update(correct)
        table.add_row(
            label, *[len(per_round[i]) for i in range(rounds)]
        )
    table.notes.append(
        "paper: SherLock rises above 120 by run 3; w/o delay and w/o"
        " accumulation plateau near or below 90"
    )
    return table


__all__ = ["SETTINGS", "run"]
