"""Table 3 — SherLock_dr vs Manual_dr in data-race detection (§5.4)."""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from ...core import SherlockConfig
from ...racedet import (
    RaceDetectionResult,
    detect_races,
    manual_spec,
    sherlock_spec,
)
from ..tables import TableResult
from .common import run_all, select_apps

PAPER_ROWS = {
    "App-1": (0, 4, 263, 14),
    "App-2": (1, 1, 0, 0),
    "App-3": (1, 18, 31, 2),
    "App-4": (0, 0, 32, 15),
    "App-5": (2, 1, 0, 6),
    "App-6": (0, 3, 31, 12),
    "App-7": (0, 2, 33, 1),
    "App-8": (0, 0, 1, 1),
}


def run(
    app_ids: Optional[Iterable[str]] = None,
    config: Optional[SherlockConfig] = None,
    seed: int = 0,
) -> Tuple[TableResult, Dict[str, Tuple[RaceDetectionResult, RaceDetectionResult]]]:
    apps = select_apps(app_ids)
    reports = run_all(apps, config)
    table = TableResult(
        "Table 3: race detection with manual vs inferred synchronizations"
        " (measured | paper)",
        ["ID", "TrueRaces Manual", "TrueRaces SherLock",
         "FalseRaces Manual", "FalseRaces SherLock", "paper(TM/TS/FM/FS)"],
    )
    results: Dict[str, Tuple[RaceDetectionResult, RaceDetectionResult]] = {}
    sums = [0, 0, 0, 0]
    for app in apps:
        manual = detect_races(app, manual_spec(app), seed=seed)
        sherlock = detect_races(
            app, sherlock_spec(reports[app.app_id].final), seed=seed
        )
        results[app.app_id] = (manual, sherlock)
        paper = PAPER_ROWS.get(app.app_id, ("-",) * 4)
        table.add_row(
            app.app_id,
            manual.true_races,
            sherlock.true_races,
            manual.false_races,
            sherlock.false_races,
            "/".join(str(p) for p in paper),
        )
        sums[0] += manual.true_races
        sums[1] += sherlock.true_races
        sums[2] += manual.false_races
        sums[3] += sherlock.false_races
    table.add_row("Sum", *sums, "4/29/391/51")
    table.notes.append(
        "only the first data race of each test run is counted (§5.4)"
    )
    return table, results


__all__ = ["PAPER_ROWS", "run"]
