"""§5.6 "Enhancing TSVD inference".

TSVD alone recognizes few conflicting thread-unsafe API-call pairs as
synchronized; SherLock's inferred synchronizations identify more pairs
as truly ordered (paper: 7-of-8 for TSVD vs 20 for SherLock_dr).
"""

from __future__ import annotations

from typing import Iterable, Optional

from ...core import SherlockConfig
from ...tsvd import run_tsvd, sherlock_synchronized_pairs
from ..tables import TableResult
from .common import run_all, select_apps


def run(
    app_ids: Optional[Iterable[str]] = None,
    config: Optional[SherlockConfig] = None,
    seed: int = 0,
) -> TableResult:
    apps = select_apps(app_ids)
    reports = run_all(apps, config)
    table = TableResult(
        "TSVD enhancement (measured; paper: TSVD 8 pairs/7 true vs"
        " SherLock 20 pairs)",
        ["App", "TSVD synced pairs", "SherLock synced pairs"],
    )
    total_tsvd = total_sherlock = 0
    for app in apps:
        tsvd = run_tsvd(app, seed=seed)
        inferred_names = reports[app.app_id].final.sync_names()
        sherlock_pairs = sherlock_synchronized_pairs(
            app, inferred_names, seed=seed
        )
        table.add_row(
            app.app_id, len(tsvd.synchronized_pairs), len(sherlock_pairs)
        )
        total_tsvd += len(tsvd.synchronized_pairs)
        total_sherlock += len(sherlock_pairs)
    table.add_row("Sum", total_tsvd, total_sherlock)
    return table


__all__ = ["run"]
