"""ASCII table rendering for the experiment regenerators."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Sequence


@dataclass
class TableResult:
    """One regenerated table/figure: headers, measured rows, and (when
    available) the paper's reported rows for side-by-side comparison."""

    title: str
    headers: Sequence[str]
    rows: List[Sequence[Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        self.rows.append(values)

    def render(self) -> str:
        widths = [len(str(h)) for h in self.headers]
        for row in self.rows:
            for i, value in enumerate(row):
                widths[i] = max(widths[i], len(str(value)))

        def fmt(row: Sequence[Any]) -> str:
            return " | ".join(
                str(v).ljust(widths[i]) for i, v in enumerate(row)
            )

        lines = [self.title, "=" * len(self.title), fmt(self.headers)]
        lines.append("-+-".join("-" * w for w in widths))
        lines.extend(fmt(row) for row in self.rows)
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def print(self) -> None:  # pragma: no cover - console convenience
        print(self.render())


__all__ = ["TableResult"]
