"""Parallel, cache-aware execution engine for Observer rounds.

The engine owns *how* an application's unit tests get executed for one
observed round: serially in-process (``workers=1``), fanned out across a
:class:`concurrent.futures.ProcessPoolExecutor`, or replayed from a
:class:`~repro.runtime.cache.TraceCache` without executing anything.

Determinism is the contract.  Every unit test runs on a fresh kernel
seeded by ``(config.seed, test qname, round index)`` alone, and per-test
context objects are built fresh per execution, so a worker process
reproduces exactly the trace the serial path would produce — parallel,
cached, and serial runs yield byte-identical serialized reports (absolute
heap addresses differ across processes, but SherLock only ever compares
addresses *within* one test's trace and never serializes them).
"""

from __future__ import annotations

import warnings
from concurrent.futures import Executor, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..apps.registry import get_application
from ..core.config import SherlockConfig
from ..core.observer import Observer
from ..sim.program import Application
from ..sim.runner import RunOptions, TestExecution, run_unit_test
from .cache import (
    DelayPlan,
    FrozenPlan,
    TraceCache,
    freeze_delay_plan,
    round_key,
    thaw_delay_plan,
)

#: (app_id, config fields, round index, frozen plan, test qname)
WorkerPayload = Tuple[str, Dict[str, Any], int, FrozenPlan, str]


@dataclass
class ObserveOutcome:
    """One observed round plus where its traces came from."""

    executions: List[TestExecution] = field(default_factory=list)
    cache_hit: bool = False
    #: Worker count that actually executed the round (1 on cache hits and
    #: serial/fallback paths).
    workers_used: int = 1

    @property
    def events_observed(self) -> int:
        return sum(len(e.log) for e in self.executions)


def execute_test_payload(payload: WorkerPayload) -> TestExecution:
    """Run one unit test from plain data (the worker-process entry point).

    Rebuilds the application, config, and delay plan from picklable
    primitives so nothing process-specific crosses the pool boundary.
    """
    app_id, config_kwargs, round_index, frozen_plan, test_qname = payload
    config = SherlockConfig(**config_kwargs)
    app = get_application(app_id)
    for test in app.tests:
        if test.qname == test_qname:
            break
    else:
        raise KeyError(f"{app_id} has no unit test {test_qname!r}")
    observer = Observer(config)
    options = RunOptions(
        seed=config.seed,
        run_id=round_index,
        op_cost=config.op_cost,
        delay_plan=thaw_delay_plan(frozen_plan),
        event_filter=observer.event_filter,
        max_steps=config.max_steps,
        schedule_policy=config.schedule_policy,
    )
    return run_unit_test(app, test, options)


class ExecutionRuntime:
    """Shared execution engine: process pool + trace cache.

    One runtime can serve many :class:`~repro.core.pipeline.Sherlock`
    instances (the experiment regenerators share one across all 8 apps),
    amortizing pool start-up and letting every caller reuse cached rounds.
    """

    def __init__(
        self,
        workers: int = 1,
        cache: Optional[TraceCache] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.cache = cache
        self._pool: Optional[Executor] = None
        self._pool_broken = False

    # -- core API ------------------------------------------------------------

    def observe_round(
        self,
        app: Application,
        config: SherlockConfig,
        round_index: int,
        delay_plan: Optional[DelayPlan] = None,
    ) -> ObserveOutcome:
        """Traces for one round: cached if seen before, else executed."""
        plan = dict(delay_plan or {})
        key = self.round_key(app.app_id, config, round_index, plan)
        if self.cache is not None:
            cached = self.cache.get(key)
            if cached is not None:
                return ObserveOutcome(cached, cache_hit=True)
        executions, workers_used = self._execute_round(
            app, config, round_index, plan
        )
        if self.cache is not None:
            self.cache.put(key, executions)
        return ObserveOutcome(executions, workers_used=workers_used)

    @staticmethod
    def round_key(
        app_id: str,
        config: SherlockConfig,
        round_index: int,
        delay_plan: Optional[DelayPlan],
    ) -> str:
        """Cache key of one round (only trace-determining fields)."""
        return round_key(
            app_id=app_id,
            seed=config.seed,
            op_cost=config.op_cost,
            max_steps=config.max_steps,
            delay_plan=delay_plan,
            round_index=round_index,
            schedule_policy=config.schedule_policy,
        )

    # -- execution paths -----------------------------------------------------

    def _execute_round(
        self,
        app: Application,
        config: SherlockConfig,
        round_index: int,
        plan: DelayPlan,
    ) -> Tuple[List[TestExecution], int]:
        if self.workers > 1 and len(app.tests) > 1 and not self._pool_broken:
            parallel = self._execute_parallel(app, config, round_index, plan)
            if parallel is not None:
                return parallel, self.workers
        observer = Observer(config)
        return observer.observe_round(app, round_index, dict(plan)), 1

    def _execute_parallel(
        self,
        app: Application,
        config: SherlockConfig,
        round_index: int,
        plan: DelayPlan,
    ) -> Optional[List[TestExecution]]:
        frozen = freeze_delay_plan(plan)
        config_kwargs = asdict(config)
        payloads: List[WorkerPayload] = [
            (app.app_id, config_kwargs, round_index, frozen, test.qname)
            for test in app.tests
        ]
        try:
            pool = self._ensure_pool()
            # map() preserves submission order, so results line up with
            # app.tests exactly as the serial path's do.
            return list(pool.map(execute_test_payload, payloads))
        except (BrokenProcessPool, OSError) as exc:
            # Pool-level failure (sandbox, OOM, dead workers): fall back
            # to serial.  Task-level exceptions propagate unchanged — a
            # failing test must not poison the pool for later rounds.
            self._pool_broken = True
            self._shutdown_pool()
            warnings.warn(
                f"process pool unavailable ({type(exc).__name__}: {exc}); "
                "falling back to serial execution",
                RuntimeWarning,
                stacklevel=3,
            )
            return None

    # -- generic fan-out -----------------------------------------------------

    def map_jobs(self, fn: Any, payloads: List[Any]) -> List[Any]:
        """Run ``fn`` over ``payloads`` on the worker pool, in order.

        The campaign-level counterpart of :meth:`observe_round`'s per-test
        fan-out: ``fn`` must be a module-level function and every payload
        picklable.  Falls back to a serial in-process loop when the pool
        is unavailable (sandbox, OOM) or the runtime is serial, so callers
        always get one result per payload, in submission order.
        """
        if self.workers > 1 and len(payloads) > 1 and not self._pool_broken:
            try:
                pool = self._ensure_pool()
                return list(pool.map(fn, payloads))
            except (BrokenProcessPool, OSError) as exc:
                # Same contract as _execute_parallel: only pool-level
                # failures trigger the serial fallback; a payload that
                # raises propagates to the caller.
                self._pool_broken = True
                self._shutdown_pool()
                warnings.warn(
                    f"process pool unavailable ({type(exc).__name__}: "
                    f"{exc}); falling back to serial execution",
                    RuntimeWarning,
                    stacklevel=2,
                )
        return [fn(payload) for payload in payloads]

    def _ensure_pool(self) -> Executor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Shut the worker pool down (the cache stays usable)."""
        self._shutdown_pool()

    def _shutdown_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ExecutionRuntime":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ExecutionRuntime(workers={self.workers}, "
            f"cache={self.cache!r})"
        )


__all__ = ["ExecutionRuntime", "ObserveOutcome", "execute_test_payload"]
