"""Cache-aware execution runtime over a pluggable engine.

The runtime owns *whether* an application's unit tests get executed for
one observed round — consulting a
:class:`~repro.runtime.cache.TraceCache` first and replaying the round
without executing anything on a hit — and delegates *how* they execute
to a pluggable :class:`~repro.runtime.engines.Engine`: serially
in-process, fanned out across a process pool, or over asyncio tasks
with bounded concurrency (``engine="serial" | "process" | "async"``).

Determinism is the contract: engines may change how fast traces are
produced, never what is inferred — serial, process, async, and cached
runs yield byte-identical serialized reports (see
:mod:`repro.runtime.engines`).

Both a synchronous surface (``observe_round`` / ``map_jobs``, used by
``repro.run()``) and an asyncio-native one (``aobserve_round`` /
``amap_jobs``, used by ``repro.arun()``) are exposed; the async path
additionally keeps cache disk I/O off the event loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from ..core.config import SherlockConfig
from ..sim.program import Application
from ..sim.runner import TestExecution
from .cache import DelayPlan, TraceCache, round_key
from .engines import (
    Engine,
    EngineSpec,
    coerce_engine,
    execute_test_payload,  # noqa: F401  (re-export: worker entry point)
)


@dataclass
class ObserveOutcome:
    """One observed round plus where its traces came from."""

    executions: List[TestExecution] = field(default_factory=list)
    cache_hit: bool = False
    #: Worker count that actually executed the round (1 on cache hits and
    #: serial/fallback paths).
    workers_used: int = 1
    #: Name of the engine that produced the round ("cache" on hits).
    engine: str = "serial"
    #: Per-round engine counters (see
    #: :class:`~repro.runtime.engines.EngineMetrics`); zero on cache hits.
    jobs_cancelled: int = 0
    concurrency_hwm: int = 0
    await_s: float = 0.0

    @property
    def events_observed(self) -> int:
        return sum(len(e.log) for e in self.executions)


class ExecutionRuntime:
    """Shared execution runtime: pluggable engine + trace cache.

    One runtime can serve many :class:`~repro.core.pipeline.Sherlock`
    instances (the experiment regenerators share one across all 8 apps),
    amortizing pool start-up and letting every caller reuse cached
    rounds.

    Lifecycle: ``close()`` is idempotent; once closed, submitting work
    raises ``RuntimeError`` immediately instead of hanging on a dead
    pool.  A ``KeyboardInterrupt``/``SystemExit`` escaping mid-round
    tears the engine down before propagating, so no worker processes
    outlive an aborted run.
    """

    def __init__(
        self,
        workers: int = 1,
        cache: Optional[TraceCache] = None,
        engine: EngineSpec = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.engine = coerce_engine(engine, default_workers=workers)
        self.cache = cache
        self._closed = False

    @property
    def workers(self) -> int:
        """Concurrency of the underlying engine (compat alias)."""
        return self.engine.concurrency

    @property
    def closed(self) -> bool:
        return self._closed

    # -- core API ------------------------------------------------------------

    def observe_round(
        self,
        app: Application,
        config: SherlockConfig,
        round_index: int,
        delay_plan: Optional[DelayPlan] = None,
    ) -> ObserveOutcome:
        """Traces for one round: cached if seen before, else executed."""
        self._check_open()
        plan = dict(delay_plan or {})
        key = self.round_key(app.app_id, config, round_index, plan)
        if self.cache is not None:
            cached = self.cache.get(key)
            if cached is not None:
                return ObserveOutcome(cached, cache_hit=True, engine="cache")
        before = self.engine.metrics.snapshot()
        with self._teardown_on_interrupt():
            executions, workers_used = self.engine.execute_round(
                app, config, round_index, plan
            )
        if self.cache is not None:
            self.cache.put(key, executions)
        return self._outcome(executions, workers_used, before)

    async def aobserve_round(
        self,
        app: Application,
        config: SherlockConfig,
        round_index: int,
        delay_plan: Optional[DelayPlan] = None,
    ) -> ObserveOutcome:
        """Async :meth:`observe_round`: cache disk I/O and job fan-out
        both happen off the event loop."""
        self._check_open()
        plan = dict(delay_plan or {})
        key = self.round_key(app.app_id, config, round_index, plan)
        if self.cache is not None:
            cached = await self.cache.aget(key)
            if cached is not None:
                return ObserveOutcome(cached, cache_hit=True, engine="cache")
        before = self.engine.metrics.snapshot()
        with self._teardown_on_interrupt():
            executions, workers_used = await self.engine.aexecute_round(
                app, config, round_index, plan
            )
        if self.cache is not None:
            await self.cache.aput(key, executions)
        return self._outcome(executions, workers_used, before)

    @staticmethod
    def round_key(
        app_id: str,
        config: SherlockConfig,
        round_index: int,
        delay_plan: Optional[DelayPlan],
    ) -> str:
        """Cache key of one round (only trace-determining fields —
        engine choice deliberately excluded)."""
        return round_key(
            app_id=app_id,
            seed=config.seed,
            op_cost=config.op_cost,
            max_steps=config.max_steps,
            delay_plan=delay_plan,
            round_index=round_index,
            schedule_policy=config.schedule_policy,
        )

    # -- generic fan-out -----------------------------------------------------

    def map_jobs(
        self, fn: Callable[[Any], Any], payloads: List[Any]
    ) -> List[Any]:
        """Run ``fn`` over ``payloads`` on the engine, in order.

        The campaign-level counterpart of :meth:`observe_round`'s
        per-test fan-out: for the process engine ``fn`` must be a
        module-level function and every payload picklable.  Callers
        always get one result per payload, in submission order.
        """
        self._check_open()
        with self._teardown_on_interrupt():
            return self.engine.map_jobs(fn, payloads)

    async def amap_jobs(
        self, fn: Callable[[Any], Any], payloads: List[Any]
    ) -> List[Any]:
        """Async :meth:`map_jobs`."""
        self._check_open()
        with self._teardown_on_interrupt():
            return await self.engine.amap_jobs(fn, payloads)

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Shut the engine down (idempotent; the cache stays usable)."""
        if self._closed:
            return
        self._closed = True
        self.engine.close()

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError(
                "ExecutionRuntime is closed; create a new runtime (a "
                "`with ExecutionRuntime(...)` block only spans its body)"
            )

    def _teardown_on_interrupt(self) -> "_TeardownOnInterrupt":
        return _TeardownOnInterrupt(self)

    def _outcome(
        self,
        executions: List[TestExecution],
        workers_used: int,
        before: Any,
    ) -> ObserveOutcome:
        delta = self.engine.metrics.since(before)
        return ObserveOutcome(
            executions,
            workers_used=workers_used,
            engine=self.engine.name,
            jobs_cancelled=delta.jobs_cancelled,
            concurrency_hwm=delta.concurrency_hwm,
            await_s=delta.await_s,
        )

    def __enter__(self) -> "ExecutionRuntime":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ExecutionRuntime(engine={self.engine!r}, "
            f"cache={self.cache!r})"
        )


class _TeardownOnInterrupt:
    """Tear the engine down when an *interrupt-class* exception escapes.

    Ordinary ``Exception``s (a failing unit test, a bad payload)
    propagate with the engine left healthy — a failing job must not
    poison the pool for later rounds (tested contract).  But a
    ``KeyboardInterrupt``/``SystemExit`` mid-fan-out used to leak live
    worker processes that hung interpreter shutdown; now the runtime
    closes itself before re-raising.
    """

    def __init__(self, runtime: ExecutionRuntime) -> None:
        self._runtime = runtime

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        if exc is not None and not isinstance(exc, Exception):
            self._runtime.close()
        return False


__all__ = ["ExecutionRuntime", "ObserveOutcome", "execute_test_payload"]
