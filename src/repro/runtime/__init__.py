"""Execution runtime: process-pool fan-out, trace caching, run metrics.

The runtime layer sits between the SherLock pipeline and the simulator:

* :class:`ExecutionRuntime` — executes Observer rounds serially or across
  a process pool, consulting a trace cache first;
* :class:`TraceCache` — content-addressed memoization of observed rounds
  (in-memory LRU + optional on-disk JSON store under ``.repro_cache/``);
* :class:`RunMetrics` — per-phase timings and cache/LP counters surfaced
  on round results and reports.

Parallel and cached runs are guaranteed to serialize byte-identically to
serial cold runs; see DESIGN.md § "Runtime".
"""

from .cache import (
    CACHE_FORMAT_VERSION,
    DEFAULT_CACHE_DIR,
    TraceCache,
    freeze_delay_plan,
    round_key,
    thaw_delay_plan,
)
from .engine import ExecutionRuntime, ObserveOutcome, execute_test_payload
from .metrics import RunMetrics

__all__ = [
    "CACHE_FORMAT_VERSION",
    "DEFAULT_CACHE_DIR",
    "ExecutionRuntime",
    "ObserveOutcome",
    "RunMetrics",
    "TraceCache",
    "execute_test_payload",
    "freeze_delay_plan",
    "round_key",
    "thaw_delay_plan",
]
