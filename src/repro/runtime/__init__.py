"""Execution runtime: pluggable engines, trace caching, run metrics.

The runtime layer sits between the SherLock pipeline and the simulator:

* :class:`ExecutionRuntime` — consults a trace cache, then delegates
  round execution to a pluggable engine; sync and async surfaces;
* :class:`Engine` — the engine interface, with
  :class:`SerialEngine` / :class:`ProcessEngine` / :class:`AsyncEngine`
  implementations (``engine="serial" | "process" | "async"``);
* :class:`TraceCache` — content-addressed memoization of observed rounds
  (in-memory LRU + optional on-disk JSON store under ``.repro_cache/``);
* :class:`RunMetrics` — per-phase timings and cache/LP/engine counters
  surfaced on round results and reports.

All engines and cached runs are guaranteed to serialize byte-identically
to serial cold runs; see DESIGN.md § "Runtime" and § "Engines and the
async runtime".
"""

from ._sync import _run_sync
from .cache import (
    CACHE_FORMAT_VERSION,
    DEFAULT_CACHE_DIR,
    TraceCache,
    freeze_delay_plan,
    round_key,
    thaw_delay_plan,
)
from .engine import ExecutionRuntime, ObserveOutcome
from .engines import (
    AsyncEngine,
    Engine,
    EngineMetrics,
    ProcessEngine,
    SerialEngine,
    coerce_engine,
    execute_test_payload,
    parse_engine_spec,
    validate_engine_spec,
)
from .metrics import RunMetrics

__all__ = [
    "CACHE_FORMAT_VERSION",
    "DEFAULT_CACHE_DIR",
    "AsyncEngine",
    "Engine",
    "EngineMetrics",
    "ExecutionRuntime",
    "ObserveOutcome",
    "ProcessEngine",
    "RunMetrics",
    "SerialEngine",
    "TraceCache",
    "_run_sync",
    "coerce_engine",
    "execute_test_payload",
    "freeze_delay_plan",
    "parse_engine_spec",
    "round_key",
    "thaw_delay_plan",
    "validate_engine_spec",
]
