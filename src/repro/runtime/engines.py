"""Pluggable execution engines: serial, process-pool, and asyncio-native.

An :class:`Engine` owns *how* unit-test jobs get executed — the
:class:`~repro.runtime.engine.ExecutionRuntime` owns *whether* they run at
all (trace-cache consultation) and wires an engine into the pipeline.
Three implementations ship:

* :class:`SerialEngine` — in-process, one job at a time (the default);
* :class:`ProcessEngine` — fan-out across a
  ``concurrent.futures.ProcessPoolExecutor`` with a serial fallback when
  the pool is unavailable (sandbox, OOM);
* :class:`AsyncEngine` — asyncio tasks with semaphore-bounded concurrency
  running jobs in worker threads, so I/O-bound stages (disk trace cache,
  future network shards) interleave with compute on one event loop.

Determinism is the shared contract.  Every unit test runs on a fresh
kernel seeded by ``(config.seed, test qname, round index)`` alone and
per-test context objects are built fresh per execution, so serial,
process, and async runs yield byte-identical serialized reports (absolute
heap-object ids differ across processes *and* across thread
interleavings, but SherLock only ever compares ids within one test's
trace and never serializes them).

The canonical interface is async (``aexecute_round`` / ``amap_jobs``);
the sync methods are façades over it via
:func:`~repro.runtime._sync._run_sync`.  Engines with a natively
synchronous hot path (serial, process) override the sync methods
directly and bridge the *async* surface instead, so no event loop is
created unless a caller actually asks for one.
"""

from __future__ import annotations

import asyncio
import os
import time
import warnings
from abc import ABC, abstractmethod
from concurrent.futures import Executor, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict, dataclass, replace
from typing import (
    Any,
    Callable,
    ClassVar,
    Dict,
    List,
    Optional,
    Tuple,
    Union,
)

from ..apps.registry import get_application, resolve_app_id
from ..core.config import SherlockConfig
from ..core.observer import Observer
from ..sim.program import Application, UnitTest
from ..sim.runner import RunOptions, TestExecution, run_unit_test
from ._sync import _run_sync
from .cache import DelayPlan, FrozenPlan, freeze_delay_plan, thaw_delay_plan

#: (app_id, config fields, round index, frozen plan, test qname)
WorkerPayload = Tuple[str, Dict[str, Any], int, FrozenPlan, str]

#: What an engine returns for one executed round.
RoundExecutions = Tuple[List[TestExecution], int]

#: Accepted ``engine=`` specs: ``None``/"auto" (pick for me), a spec
#: string ("serial" | "process[:N]" | "async[:N]"), or an Engine.
EngineSpec = Union[None, str, "Engine"]

_ENGINE_KINDS = ("serial", "process", "async")


def execute_test_payload(payload: WorkerPayload) -> TestExecution:
    """Run one unit test from plain data (the worker entry point).

    Rebuilds the application, config, and delay plan from picklable
    primitives so nothing process-specific crosses the pool boundary.
    The async engine reuses it per worker *thread* for the same
    isolation: every job gets a private application instance.
    """
    app_id, config_kwargs, round_index, frozen_plan, test_qname = payload
    config = SherlockConfig(**config_kwargs)
    app = get_application(app_id)
    for test in app.tests:
        if test.qname == test_qname:
            break
    else:
        raise KeyError(f"{app_id} has no unit test {test_qname!r}")
    return _run_one_test(app, test, config, round_index, frozen_plan)


def _run_one_test(
    app: Application,
    test: UnitTest,
    config: SherlockConfig,
    round_index: int,
    frozen_plan: FrozenPlan,
) -> TestExecution:
    """Execute one unit test exactly as the serial Observer path would."""
    observer = Observer(config)
    options = RunOptions(
        seed=config.seed,
        run_id=round_index,
        op_cost=config.op_cost,
        delay_plan=thaw_delay_plan(frozen_plan),
        event_filter=observer.event_filter,
        max_steps=config.max_steps,
        schedule_policy=config.schedule_policy,
    )
    return run_unit_test(app, test, options)


def _app_registered(app: Application) -> bool:
    """True when ``app.app_id`` resolves to a registry builder, so jobs
    can rebuild a private instance from the id alone."""
    try:
        return resolve_app_id(app.app_id) == app.app_id
    except KeyError:
        return False


# -- metrics -----------------------------------------------------------------


@dataclass
class EngineMetrics:
    """Cumulative fan-out counters of one engine instance.

    Observability only — like :class:`~repro.runtime.metrics.RunMetrics`
    these never enter serialized reports.  Per-round deltas are computed
    by the runtime via :meth:`snapshot` / :meth:`since`.
    """

    #: Jobs that ran to completion (cache hits never reach an engine).
    jobs_completed: int = 0
    #: Jobs cancelled cooperatively after a sibling failed (async only).
    jobs_cancelled: int = 0
    #: Most jobs ever in flight at once (1 for serial; the pool size for
    #: process rounds that actually fanned out).
    concurrency_hwm: int = 0
    #: Seconds spent awaiting job fan-out (async engine only: wall time
    #: between dispatching a batch and its last job settling).
    await_s: float = 0.0

    def snapshot(self) -> "EngineMetrics":
        return replace(self)

    def since(self, before: "EngineMetrics") -> "EngineMetrics":
        """Counters accumulated after ``before`` was snapshotted (the
        high-water mark is level-valued and carried over, not diffed)."""
        return EngineMetrics(
            jobs_completed=self.jobs_completed - before.jobs_completed,
            jobs_cancelled=self.jobs_cancelled - before.jobs_cancelled,
            concurrency_hwm=self.concurrency_hwm,
            await_s=self.await_s - before.await_s,
        )

    def as_dict(self) -> Dict[str, Any]:
        return asdict(self)


# -- the interface -----------------------------------------------------------


class Engine(ABC):
    """How jobs execute: one round's unit tests, or a generic fan-out.

    Contract:

    * ``aexecute_round`` / ``execute_round`` return one
      :class:`TestExecution` per ``app.tests`` entry, in test order, plus
      the worker count that actually executed the round;
    * ``amap_jobs`` / ``map_jobs`` return one result per payload, in
      submission order; a job exception propagates to the caller;
    * results are byte-identical to the serial path's — an engine may
      change how *fast* traces are produced, never what is inferred;
    * ``close`` is idempotent and the engine must stay safe to close on
      error paths (no hangs on dead workers).
    """

    name: ClassVar[str] = "abstract"

    def __init__(self) -> None:
        self.metrics = EngineMetrics()

    #: Concurrent jobs this engine runs at most (1 for serial).
    @property
    def concurrency(self) -> int:
        return 1

    # -- canonical async surface ---------------------------------------------

    @abstractmethod
    async def aexecute_round(
        self,
        app: Application,
        config: SherlockConfig,
        round_index: int,
        plan: DelayPlan,
    ) -> RoundExecutions:
        """Execute all unit tests of one round."""

    @abstractmethod
    async def amap_jobs(
        self, fn: Callable[[Any], Any], payloads: List[Any]
    ) -> List[Any]:
        """Run ``fn`` over ``payloads``, results in submission order."""

    # -- sync façade ---------------------------------------------------------

    def execute_round(
        self,
        app: Application,
        config: SherlockConfig,
        round_index: int,
        plan: DelayPlan,
    ) -> RoundExecutions:
        return _run_sync(
            self.aexecute_round(app, config, round_index, plan)
        )

    def map_jobs(
        self, fn: Callable[[Any], Any], payloads: List[Any]
    ) -> List[Any]:
        return _run_sync(self.amap_jobs(fn, payloads))

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Release engine resources; safe to call more than once."""

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


# -- serial ------------------------------------------------------------------


class SerialEngine(Engine):
    """In-process, one job at a time — the reference implementation."""

    name = "serial"

    def execute_round(
        self,
        app: Application,
        config: SherlockConfig,
        round_index: int,
        plan: DelayPlan,
    ) -> RoundExecutions:
        observer = Observer(config)
        executions = observer.observe_round(app, round_index, dict(plan))
        self._count(len(executions))
        return executions, 1

    def map_jobs(
        self, fn: Callable[[Any], Any], payloads: List[Any]
    ) -> List[Any]:
        results = [fn(payload) for payload in payloads]
        self._count(len(results))
        return results

    async def aexecute_round(
        self,
        app: Application,
        config: SherlockConfig,
        round_index: int,
        plan: DelayPlan,
    ) -> RoundExecutions:
        return self.execute_round(app, config, round_index, plan)

    async def amap_jobs(
        self, fn: Callable[[Any], Any], payloads: List[Any]
    ) -> List[Any]:
        return self.map_jobs(fn, payloads)

    def _count(self, jobs: int) -> None:
        self.metrics.jobs_completed += jobs
        if jobs:
            self.metrics.concurrency_hwm = max(
                self.metrics.concurrency_hwm, 1
            )


# -- process pool ------------------------------------------------------------


class ProcessEngine(Engine):
    """Fan-out across a process pool, with a serial fallback.

    Only pool-level failures (``BrokenProcessPool``, ``OSError``: dead
    workers, sandbox, OOM) trigger the fallback and mark the pool broken;
    a job that raises propagates to the caller and the pool stays
    healthy — a failing test must not poison the pool for later rounds.
    """

    name = "process"

    def __init__(self, workers: int = 2) -> None:
        super().__init__()
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self._pool: Optional[Executor] = None
        self._pool_broken = False

    @property
    def concurrency(self) -> int:
        return self.workers

    def execute_round(
        self,
        app: Application,
        config: SherlockConfig,
        round_index: int,
        plan: DelayPlan,
    ) -> RoundExecutions:
        if (
            self.workers > 1
            and len(app.tests) > 1
            and not self._pool_broken
            and _app_registered(app)
        ):
            parallel = self._execute_parallel(app, config, round_index, plan)
            if parallel is not None:
                self._count(len(parallel), self.workers)
                return parallel, self.workers
        observer = Observer(config)
        executions = observer.observe_round(app, round_index, dict(plan))
        self._count(len(executions), 1)
        return executions, 1

    def _execute_parallel(
        self,
        app: Application,
        config: SherlockConfig,
        round_index: int,
        plan: DelayPlan,
    ) -> Optional[List[TestExecution]]:
        frozen = freeze_delay_plan(plan)
        config_kwargs = asdict(config)
        payloads: List[WorkerPayload] = [
            (app.app_id, config_kwargs, round_index, frozen, test.qname)
            for test in app.tests
        ]
        try:
            pool = self._ensure_pool()
            # map() preserves submission order, so results line up with
            # app.tests exactly as the serial path's do.
            return list(pool.map(execute_test_payload, payloads))
        except (BrokenProcessPool, OSError) as exc:
            self._mark_broken(exc, stacklevel=4)
            return None

    def map_jobs(
        self, fn: Callable[[Any], Any], payloads: List[Any]
    ) -> List[Any]:
        if self.workers > 1 and len(payloads) > 1 and not self._pool_broken:
            try:
                pool = self._ensure_pool()
                results = list(pool.map(fn, payloads))
                self._count(len(results), self.workers)
                return results
            except (BrokenProcessPool, OSError) as exc:
                # Same contract as _execute_parallel: only pool-level
                # failures trigger the serial fallback; a payload that
                # raises propagates to the caller.
                self._mark_broken(exc, stacklevel=3)
        results = [fn(payload) for payload in payloads]
        self._count(len(results), 1)
        return results

    async def aexecute_round(
        self,
        app: Application,
        config: SherlockConfig,
        round_index: int,
        plan: DelayPlan,
    ) -> RoundExecutions:
        # Blocking pool.map runs in a helper thread so the caller's loop
        # stays free for cache I/O and sibling tasks.
        return await asyncio.to_thread(
            self.execute_round, app, config, round_index, plan
        )

    async def amap_jobs(
        self, fn: Callable[[Any], Any], payloads: List[Any]
    ) -> List[Any]:
        return await asyncio.to_thread(self.map_jobs, fn, payloads)

    def _mark_broken(self, exc: BaseException, stacklevel: int) -> None:
        self._pool_broken = True
        self.close()
        warnings.warn(
            f"process pool unavailable ({type(exc).__name__}: {exc}); "
            "falling back to serial execution",
            RuntimeWarning,
            stacklevel=stacklevel + 1,
        )

    def _ensure_pool(self) -> Executor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def _count(self, jobs: int, used: int) -> None:
        self.metrics.jobs_completed += jobs
        if jobs:
            self.metrics.concurrency_hwm = max(
                self.metrics.concurrency_hwm, min(used, jobs)
            )

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __repr__(self) -> str:
        return f"ProcessEngine(workers={self.workers})"


# -- asyncio-native ----------------------------------------------------------


class AsyncEngine(Engine):
    """asyncio tasks with semaphore-bounded concurrency.

    Jobs run in worker threads (``asyncio.to_thread``) so the event loop
    stays free to interleave cache I/O and sibling work; an
    ``asyncio.Semaphore`` bounds how many are in flight.  Registered
    apps are rebuilt per job from their id — exactly the process
    engine's isolation — and unregistered :class:`Application` instances
    are shared read-only across jobs (their per-test state is built
    fresh by ``make_context``, like the serial path).

    Cancellation is cooperative: when a job raises, every task still
    queued on the semaphore is cancelled (counted in
    ``metrics.jobs_cancelled``) and in-flight worker threads are awaited
    to completion before the original exception propagates — no orphaned
    threads, no half-delivered batches.
    """

    name = "async"

    def __init__(self, concurrency: Optional[int] = None) -> None:
        super().__init__()
        if concurrency is None:
            concurrency = os.cpu_count() or 4
        if concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        self._concurrency = concurrency
        self._in_flight = 0

    @property
    def concurrency(self) -> int:
        return self._concurrency

    async def aexecute_round(
        self,
        app: Application,
        config: SherlockConfig,
        round_index: int,
        plan: DelayPlan,
    ) -> RoundExecutions:
        frozen = freeze_delay_plan(plan)
        if _app_registered(app):
            config_kwargs = asdict(config)
            payloads: List[WorkerPayload] = [
                (app.app_id, config_kwargs, round_index, frozen, t.qname)
                for t in app.tests
            ]
            executions = await self.amap_jobs(
                execute_test_payload, payloads
            )
        else:
            executions = await self.amap_jobs(
                lambda test: _run_one_test(
                    app, test, config, round_index, frozen
                ),
                list(app.tests),
            )
        used = min(self._concurrency, max(1, len(executions)))
        return executions, used

    async def amap_jobs(
        self, fn: Callable[[Any], Any], payloads: List[Any]
    ) -> List[Any]:
        if not payloads:
            return []
        semaphore = asyncio.Semaphore(self._concurrency)

        async def one_job(payload: Any) -> Any:
            async with semaphore:
                self._in_flight += 1
                self.metrics.concurrency_hwm = max(
                    self.metrics.concurrency_hwm, self._in_flight
                )
                try:
                    return await asyncio.to_thread(fn, payload)
                finally:
                    self._in_flight -= 1

        tasks = [
            asyncio.ensure_future(one_job(payload)) for payload in payloads
        ]
        t_start = time.perf_counter()
        try:
            results = await asyncio.gather(*tasks)
        except BaseException:
            for task in tasks:
                task.cancel()
            settled = await asyncio.gather(*tasks, return_exceptions=True)
            self.metrics.jobs_cancelled += sum(
                1
                for outcome in settled
                if isinstance(outcome, asyncio.CancelledError)
            )
            raise
        finally:
            self.metrics.await_s += time.perf_counter() - t_start
        self.metrics.jobs_completed += len(results)
        return results

    def __repr__(self) -> str:
        return f"AsyncEngine(concurrency={self._concurrency})"


# -- spec parsing ------------------------------------------------------------


def parse_engine_spec(spec: str) -> Tuple[str, Optional[int]]:
    """Split an engine spec string into ``(kind, concurrency)``.

    ``"serial" | "process[:N]" | "async[:N]" | "auto"`` — raises
    ``ValueError`` on anything else.
    """
    if not isinstance(spec, str):
        raise TypeError(
            f"engine spec must be a string or Engine, got {type(spec).__name__}"
        )
    kind, sep, arg = spec.partition(":")
    if kind == "auto":
        if sep:
            raise ValueError("engine spec 'auto' takes no :N suffix")
        return "auto", None
    if kind not in _ENGINE_KINDS:
        raise ValueError(
            f"unknown engine spec {spec!r}; choose from "
            f"{['auto', *_ENGINE_KINDS]} (e.g. 'process:4', 'async:8')"
        )
    concurrency: Optional[int] = None
    if sep:
        if kind == "serial":
            raise ValueError("engine spec 'serial' takes no :N suffix")
        try:
            concurrency = int(arg)
        except ValueError:
            raise ValueError(
                f"engine spec {spec!r}: concurrency {arg!r} is not an "
                "integer"
            ) from None
        if concurrency < 1:
            raise ValueError(
                f"engine spec {spec!r}: concurrency must be >= 1"
            )
    return kind, concurrency


def validate_engine_spec(spec: str) -> None:
    """Raise ``ValueError``/``TypeError`` when ``spec`` cannot name an
    engine (used by ``SherlockConfig.validate``)."""
    parse_engine_spec(spec)


def coerce_engine(
    spec: EngineSpec = None, *, default_workers: Optional[int] = None
) -> Engine:
    """Interpret an ``engine=`` argument into a live :class:`Engine`.

    ``None``/"auto" → serial, unless ``default_workers`` > 1 (the legacy
    ``workers=`` knob) selects a process pool of that size.  Spec strings
    without an explicit ``:N`` size themselves from ``default_workers``
    when it is > 1, else from ``os.cpu_count()``.  An :class:`Engine`
    instance passes through unchanged (sharable across calls).
    """
    if isinstance(spec, Engine):
        return spec
    kind, concurrency = parse_engine_spec(spec if spec is not None else "auto")
    if kind == "auto":
        if default_workers is not None and default_workers > 1:
            return ProcessEngine(default_workers)
        return SerialEngine()
    if kind == "serial":
        return SerialEngine()
    if concurrency is None:
        if default_workers is not None and default_workers > 1:
            concurrency = default_workers
        else:
            concurrency = os.cpu_count() or 4
    if kind == "process":
        return ProcessEngine(concurrency)
    return AsyncEngine(concurrency)


__all__ = [
    "AsyncEngine",
    "Engine",
    "EngineMetrics",
    "EngineSpec",
    "ProcessEngine",
    "SerialEngine",
    "WorkerPayload",
    "coerce_engine",
    "execute_test_payload",
    "parse_engine_spec",
    "validate_engine_spec",
]
