"""Per-phase timing and counter metrics for pipeline runs.

Every round the execution engine and the pipeline record how long each
phase took (observe, extract, solve, perturb), whether the round's traces
came from the cache, and how large the LP was.  A :class:`RunMetrics`
instance rides on each :class:`~repro.core.pipeline.RoundResult`;
aggregates over a whole run are exposed as
:attr:`~repro.core.pipeline.SherlockReport.metrics` and printed by
``python -m repro ... --stats``.

Metrics are observability data only: they are intentionally excluded from
:func:`repro.core.serialize.report_to_dict`, so serialized reports stay
byte-identical across serial, parallel, and cached runs.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Iterable


@dataclass
class RunMetrics:
    """Timings and counters for one round (or an aggregate over rounds)."""

    #: Wall-clock seconds spent executing the app's tests (or loading the
    #: round's traces from the cache).
    observe_s: float = 0.0
    #: Seconds spent extracting windows and ingesting into the store.
    extract_s: float = 0.0
    #: Seconds spent encoding the LP (building/patching the model).
    encode_s: float = 0.0
    #: Seconds spent solving the LP (lowering + backend).
    solve_s: float = 0.0
    #: Seconds spent building the next round's delay plan.
    perturb_s: float = 0.0
    #: Rounds whose traces were served from the trace cache.
    cache_hits: int = 0
    #: Rounds whose traces had to be executed.
    cache_misses: int = 0
    #: Unit-test executions represented (executed or replayed from cache).
    tests_executed: int = 0
    #: Trace events observed across those executions.
    events_observed: int = 0
    #: LP size of the (final, when aggregated) solve.
    lp_variables: int = 0
    lp_constraints: int = 0
    #: Simplex pivots / HiGHS iterations of the round's solve (summed
    #: when aggregated).
    lp_pivots: int = 0
    #: Basis LU factorizations of the revised simplex (total, and the
    #: subset that were mid-solve refactorizations — eta file full or a
    #: numerically unsafe update pivot).  Zero for backends without a
    #: factorized basis; summed when aggregated.
    lp_factorizations: int = 0
    lp_refactorizations: int = 0
    #: Cold-solve phase breakdown of the revised simplex: seconds spent
    #: LU-factorizing the basis, in ftran/btran triangular solves, and
    #: in pricing, plus the packed eta-file length (entries appended).
    #: Zero for other backends; summed when aggregated.  Lets a solver
    #: regression be attributed to a phase without re-profiling.
    lp_factorize_s: float = 0.0
    lp_ftran_btran_s: float = 0.0
    lp_pricing_s: float = 0.0
    lp_eta_len: int = 0
    #: Presolve + dual re-solve counters (scale tier; zero below the
    #: 4096-column gate where presolve is the identity): seconds spent
    #: reducing, rows/columns the reductions removed, dual-simplex
    #: re-solve pivots, primal phase-1 iterations, and how many rounds
    #: did zero phase-1 work (``lp_phase1_skipped``, summed when
    #: aggregated so a 3-round run reports up to 3).
    lp_presolve_s: float = 0.0
    lp_presolve_rows: int = 0
    lp_presolve_cols: int = 0
    lp_dual_iterations: int = 0
    lp_phase1_iterations: int = 0
    lp_phase1_skipped: int = 0
    #: Variables/constraints the encoder actually appended this round —
    #: equals the full LP size on a rebuild, and only the round's delta
    #: on the incremental path (summed when aggregated).
    lp_delta_variables: int = 0
    lp_delta_constraints: int = 0
    #: Directed schedule-search counters (``repro convert``): targets
    #: attempted, targets converted into observed FastTrack races,
    #: targets flagged as candidate false predictions, and directed
    #: schedules executed.  Zero outside conversion passes; summed when
    #: aggregated.
    convert_targets: int = 0
    convert_converted: int = 0
    convert_flagged: int = 0
    convert_runs: int = 0
    #: Worker-process count of the runtime that produced the traces.
    workers: int = 1
    #: Engine fan-out counters (see
    #: :class:`~repro.runtime.engines.EngineMetrics`): most jobs in
    #: flight at once, jobs cancelled after a sibling failed (async
    #: engine), and wall seconds spent awaiting job batches.
    engine_concurrency_hwm: int = 0
    engine_jobs_cancelled: int = 0
    engine_await_s: float = 0.0

    @property
    def total_s(self) -> float:
        """Total wall-clock seconds across all phases."""
        return (
            self.observe_s
            + self.extract_s
            + self.encode_s
            + self.solve_s
            + self.perturb_s
        )

    def merge(self, other: "RunMetrics") -> None:
        """Fold another round's metrics into this aggregate (in place)."""
        self.observe_s += other.observe_s
        self.extract_s += other.extract_s
        self.encode_s += other.encode_s
        self.solve_s += other.solve_s
        self.perturb_s += other.perturb_s
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.tests_executed += other.tests_executed
        self.events_observed += other.events_observed
        # LP sizes are per-solve, not additive; keep the largest (the final
        # round's, under accumulation).  Pivots and deltas are per-round
        # work actually done, so they add up.
        self.lp_variables = max(self.lp_variables, other.lp_variables)
        self.lp_constraints = max(self.lp_constraints, other.lp_constraints)
        self.lp_pivots += other.lp_pivots
        self.lp_factorizations += other.lp_factorizations
        self.lp_refactorizations += other.lp_refactorizations
        self.lp_factorize_s += other.lp_factorize_s
        self.lp_ftran_btran_s += other.lp_ftran_btran_s
        self.lp_pricing_s += other.lp_pricing_s
        self.lp_eta_len += other.lp_eta_len
        self.lp_presolve_s += other.lp_presolve_s
        self.lp_presolve_rows += other.lp_presolve_rows
        self.lp_presolve_cols += other.lp_presolve_cols
        self.lp_dual_iterations += other.lp_dual_iterations
        self.lp_phase1_iterations += other.lp_phase1_iterations
        self.lp_phase1_skipped += other.lp_phase1_skipped
        self.lp_delta_variables += other.lp_delta_variables
        self.lp_delta_constraints += other.lp_delta_constraints
        self.convert_targets += other.convert_targets
        self.convert_converted += other.convert_converted
        self.convert_flagged += other.convert_flagged
        self.convert_runs += other.convert_runs
        self.workers = max(self.workers, other.workers)
        # The high-water mark is level-valued (keep the peak); the other
        # engine counters are per-round work and add up.
        self.engine_concurrency_hwm = max(
            self.engine_concurrency_hwm, other.engine_concurrency_hwm
        )
        self.engine_jobs_cancelled += other.engine_jobs_cancelled
        self.engine_await_s += other.engine_await_s

    @classmethod
    def aggregate(cls, rounds: Iterable["RunMetrics"]) -> "RunMetrics":
        """Sum a sequence of per-round metrics into one aggregate."""
        total = cls()
        for metrics in rounds:
            if metrics is not None:
                total.merge(metrics)
        return total

    def describe(self) -> str:
        """Multi-line human-readable summary (used by ``--stats``)."""
        return "\n".join(
            [
                f"phases: observe {self.observe_s:.3f}s, "
                f"extract {self.extract_s:.3f}s, "
                f"encode {self.encode_s:.3f}s, "
                f"solve {self.solve_s:.3f}s, "
                f"perturb {self.perturb_s:.3f}s "
                f"(total {self.total_s:.3f}s)",
                f"cache: {self.cache_hits} hits, "
                f"{self.cache_misses} misses",
                f"executions: {self.tests_executed} tests, "
                f"{self.events_observed} events, "
                f"workers={self.workers}",
                f"lp: {self.lp_variables} variables, "
                f"{self.lp_constraints} constraints, "
                f"{self.lp_pivots} pivots, "
                f"{self.lp_factorizations} factorizations "
                f"({self.lp_refactorizations} re-) "
                f"(delta {self.lp_delta_variables}v/"
                f"{self.lp_delta_constraints}c)",
                f"lp solve phases: factorize {self.lp_factorize_s:.3f}s, "
                f"ftran/btran {self.lp_ftran_btran_s:.3f}s, "
                f"pricing {self.lp_pricing_s:.3f}s, "
                f"eta length {self.lp_eta_len}",
                f"lp presolve: {self.lp_presolve_s:.3f}s, "
                f"{self.lp_presolve_rows} rows / "
                f"{self.lp_presolve_cols} cols eliminated; "
                f"re-solve: {self.lp_dual_iterations} dual pivots, "
                f"{self.lp_phase1_iterations} phase-1 iterations, "
                f"phase-1 skipped in {self.lp_phase1_skipped} round(s)",
                f"engine: concurrency hwm "
                f"{self.engine_concurrency_hwm}, "
                f"{self.engine_jobs_cancelled} cancelled jobs, "
                f"await {self.engine_await_s:.3f}s",
                f"convert: {self.convert_targets} targets, "
                f"{self.convert_converted} converted, "
                f"{self.convert_flagged} flagged, "
                f"{self.convert_runs} directed runs",
            ]
        )

    def as_dict(self) -> dict:
        """Plain-dict view (stable field order)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


__all__ = ["RunMetrics"]
