"""Content-addressed trace cache.

A round's test executions are fully determined by ``(app_id, seed,
op_cost, max_steps, delay_plan, round_index)``: the kernel is seeded per
test and per round, so re-executing with the same key reproduces the same
traces.  The cache therefore memoizes whole observed rounds under a
digest of that tuple — an in-memory LRU for repeated runs inside one
process (ablation sweeps, figure regenerators) plus an optional on-disk
JSON store under ``.repro_cache/`` that survives across processes
(``python -m repro ... --cache``).

Anything that could change a trace is part of the key; solver-side knobs
(λ, Near, thresholds, hypothesis toggles) deliberately are not, so an
ablation sweep over solver settings reuses one set of traces.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import os
from collections import OrderedDict
from typing import Dict, List, Mapping, Optional, Tuple, Union

from ..sim.kernel import DelaySpec
from ..sim.runner import TestExecution
from ..trace.events import DelayInterval, TraceEvent
from ..trace.log import TraceLog
from ..trace.optypes import OpRef, OpType

#: Bump when the serialized execution format or the key recipe changes.
CACHE_FORMAT_VERSION = 2

#: Default location of the on-disk store.
DEFAULT_CACHE_DIR = ".repro_cache"

#: One canonical delay-plan entry:
#: (trigger name, trigger optype, duration, site name, site optype).
FrozenPlanEntry = Tuple[str, str, float, str, str]
FrozenPlan = Tuple[FrozenPlanEntry, ...]

DelayPlan = Mapping[OpRef, Union[DelaySpec, float]]


def freeze_delay_plan(plan: Optional[DelayPlan]) -> FrozenPlan:
    """Canonical, hashable, sorted form of a delay plan."""
    entries: List[FrozenPlanEntry] = []
    for trigger, spec in (plan or {}).items():
        if isinstance(spec, DelaySpec):
            duration, site = spec.duration, spec.site
        else:  # bare-float plans are accepted by the kernel
            duration, site = float(spec), trigger
        entries.append(
            (
                trigger.name,
                trigger.optype.value,
                float(duration),
                site.name,
                site.optype.value,
            )
        )
    return tuple(sorted(entries))


def thaw_delay_plan(frozen: FrozenPlan) -> Dict[OpRef, DelaySpec]:
    """Rebuild a kernel-ready delay plan from its canonical form."""
    plan: Dict[OpRef, DelaySpec] = {}
    for name, optype, duration, site_name, site_optype in frozen:
        trigger = OpRef(name, OpType(optype))
        site = OpRef(site_name, OpType(site_optype))
        plan[trigger] = DelaySpec(duration=duration, site=site)
    return plan


def round_key(
    app_id: str,
    seed: int,
    op_cost: float,
    max_steps: int,
    delay_plan: Optional[DelayPlan],
    round_index: int,
    schedule_policy: str = "random",
) -> str:
    """Content digest of everything that determines one round's traces."""
    payload = json.dumps(
        {
            "version": CACHE_FORMAT_VERSION,
            "app_id": app_id,
            "seed": seed,
            "op_cost": op_cost,
            "max_steps": max_steps,
            "delay_plan": list(freeze_delay_plan(delay_plan)),
            "round_index": round_index,
            "schedule_policy": schedule_policy,
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# -- execution (de)serialization ---------------------------------------------


def execution_to_dict(execution: TestExecution) -> dict:
    log = execution.log
    return {
        "test": execution.test_name,
        "steps": execution.steps,
        "error": execution.error,
        "log": {
            "run_id": log.run_id,
            "delays": [
                {
                    "tid": d.thread_id,
                    "start": d.start,
                    "end": d.end,
                    "name": d.site.name,
                    "op": d.site.optype.value,
                    "run": d.run_id,
                }
                for d in log.delays
            ],
            "events": [event.to_dict() for event in log.events],
        },
    }


def execution_from_dict(data: dict) -> TestExecution:
    log_data = data["log"]
    log = TraceLog(run_id=int(log_data["run_id"]))
    for d in log_data["delays"]:
        log.add_delay(
            DelayInterval(
                thread_id=int(d["tid"]),
                start=float(d["start"]),
                end=float(d["end"]),
                site=OpRef(d["name"], OpType(d["op"])),
                run_id=int(d.get("run", log.run_id)),
            )
        )
    log.events = [TraceEvent.from_dict(e) for e in log_data["events"]]
    return TestExecution(
        test_name=data["test"],
        log=log,
        steps=int(data["steps"]),
        error=data["error"],
    )


def _clone_executions(
    executions: List[TestExecution],
) -> List[TestExecution]:
    """Deep copy via the serialization round-trip (the one deep-copy
    recipe the cache already trusts for disk entries)."""
    return [execution_from_dict(execution_to_dict(e)) for e in executions]


class TraceCache:
    """In-memory LRU of observed rounds, optionally backed by a JSON dir.

    ``get``/``put`` operate on whole rounds (lists of
    :class:`TestExecution`).  With a ``path``, every stored round is also
    written to ``<path>/<key>.json`` and disk entries hydrate the LRU on
    first access, so a second process invocation runs warm.
    """

    def __init__(
        self,
        path: Optional[Union[str, "os.PathLike[str]"]] = None,
        memory_entries: int = 256,
    ) -> None:
        if memory_entries < 1:
            raise ValueError("memory_entries must be >= 1")
        self.path = os.fspath(path) if path is not None else None
        self.memory_entries = memory_entries
        self._lru: "OrderedDict[str, List[TestExecution]]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    # -- lookup --------------------------------------------------------------

    def get(self, key: str) -> Optional[List[TestExecution]]:
        """The cached round for ``key``, or None (counts a hit or miss).

        Returns a deep copy: callers may freely mutate the executions
        (the trace sanitizer rewrites event lists in place) without
        corrupting the cached round for later hits.
        """
        if key in self._lru:
            self._lru.move_to_end(key)
            self.hits += 1
            return _clone_executions(self._lru[key])
        executions = self._read_disk(key)
        if executions is not None:
            # Freshly deserialized objects are private already; hand them
            # out and remember a separate copy.
            self._remember(key, _clone_executions(executions))
            self.hits += 1
            return executions
        self.misses += 1
        return None

    def put(self, key: str, executions: List[TestExecution]) -> None:
        """Store one observed round under its content key.

        Deep-copies the executions so later caller-side mutation cannot
        alias into the cache.
        """
        self._remember(key, _clone_executions(executions))
        self._write_disk(key, executions)

    async def aget(self, key: str) -> Optional[List[TestExecution]]:
        """Async :meth:`get`: disk reads run in a worker thread so the
        event loop stays free (LRU hits short-circuit without one)."""
        if key in self._lru:
            return self.get(key)
        return await asyncio.to_thread(self.get, key)

    async def aput(self, key: str, executions: List[TestExecution]) -> None:
        """Async :meth:`put`: serialization + disk write off the loop."""
        await asyncio.to_thread(self.put, key, executions)

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "memory_entries": len(self._lru),
        }

    def clear(self) -> None:
        """Drop the in-memory LRU (disk entries are untouched)."""
        self._lru.clear()

    # -- internals -----------------------------------------------------------

    def _remember(self, key: str, executions: List[TestExecution]) -> None:
        self._lru[key] = list(executions)
        self._lru.move_to_end(key)
        while len(self._lru) > self.memory_entries:
            self._lru.popitem(last=False)

    def _entry_path(self, key: str) -> str:
        assert self.path is not None
        return os.path.join(self.path, f"{key}.json")

    def _read_disk(self, key: str) -> Optional[List[TestExecution]]:
        if self.path is None:
            return None
        entry = self._entry_path(key)
        try:
            with open(entry, "r", encoding="utf-8") as fp:
                data = json.load(fp)
        except (OSError, ValueError):
            return None
        if data.get("version") != CACHE_FORMAT_VERSION:
            return None
        return [execution_from_dict(e) for e in data["executions"]]

    def _write_disk(self, key: str, executions: List[TestExecution]) -> None:
        if self.path is None:
            return
        os.makedirs(self.path, exist_ok=True)
        entry = self._entry_path(key)
        tmp = f"{entry}.tmp.{os.getpid()}"
        payload = {
            "version": CACHE_FORMAT_VERSION,
            "key": key,
            "executions": [execution_to_dict(e) for e in executions],
        }
        try:
            with open(tmp, "w", encoding="utf-8") as fp:
                json.dump(payload, fp)
            os.replace(tmp, entry)
        except OSError:
            # Disk store is best-effort; the in-memory entry still serves.
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def __repr__(self) -> str:
        backing = f"disk={self.path!r}" if self.path else "memory-only"
        return (
            f"TraceCache({backing}, entries={len(self._lru)}, "
            f"hits={self.hits}, misses={self.misses})"
        )


__all__ = [
    "CACHE_FORMAT_VERSION",
    "DEFAULT_CACHE_DIR",
    "TraceCache",
    "execution_from_dict",
    "execution_to_dict",
    "freeze_delay_plan",
    "round_key",
    "thaw_delay_plan",
]
