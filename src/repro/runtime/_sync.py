"""Sync-over-async bridge.

The execution engines are asyncio-native (:mod:`repro.runtime.engines`);
the public API stays synchronous.  :func:`_run_sync` is the one bridge
between the two worlds: it runs a coroutine to completion from plain
synchronous code, with or without an event loop already running in the
calling thread, and propagates exceptions unchanged.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Coroutine, Optional, TypeVar

T = TypeVar("T")


def running_loop() -> Optional[asyncio.AbstractEventLoop]:
    """The calling thread's running event loop, or ``None``."""
    try:
        return asyncio.get_running_loop()
    except RuntimeError:
        return None


def _run_sync(coro: "Coroutine[Any, Any, T]") -> T:
    """Run ``coro`` to completion and return its result, synchronously.

    Without a running loop in the calling thread this is plain
    ``asyncio.run``.  *With* one (a sync façade called from inside an
    async framework), the coroutine cannot run on the caller's loop —
    awaiting it would require the caller to yield — so it runs on a
    private loop in a short-lived helper thread and the caller blocks on
    the result.  Either way the coroutine's return value comes back and
    its exceptions propagate to the caller unchanged.
    """
    if running_loop() is None:
        return asyncio.run(coro)
    with ThreadPoolExecutor(
        max_workers=1, thread_name_prefix="repro-run-sync"
    ) as pool:
        return pool.submit(asyncio.run, coro).result()


__all__ = ["_run_sync", "running_loop"]
