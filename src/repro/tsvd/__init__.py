"""TSVD-style thread-safety-violation detector (the §5.6 baseline)."""

from .detector import (
    TsvdResult,
    analyze_log,
    run_tsvd,
    sherlock_synchronized_pairs,
)

__all__ = [
    "TsvdResult",
    "analyze_log",
    "run_tsvd",
    "sherlock_synchronized_pairs",
]
