"""A TSVD-style thread-safety-violation detector (§5.6 baseline).

TSVD (Li et al., SOSP'19) targets calls into thread-unsafe APIs.  It
infers a happens-before relation between two conflicting thread-unsafe
call sites when an injected delay before one call cascades into the
other; such pairs are skipped when hunting violations.  Unlike SherLock
it never pinpoints *which* operation synchronizes — only that a pair is
ordered.

This reproduction implements the part §5.6 compares against: finding
conflicting thread-unsafe API call pairs and classifying them as likely
synchronized (delay propagates / never overlap) or racy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Set, Tuple

from ..sim.program import Application
from ..sim.runner import RunOptions, run_application
from ..trace.log import TraceLog
from ..trace.optypes import OpRef, OpType

#: A conflicting thread-unsafe call pair: ordered static call sites.
PairKey = Tuple[OpRef, OpRef]


@dataclass
class TsvdResult:
    """Conflicting thread-unsafe API pairs and their inferred ordering."""

    app_id: str
    #: Pairs whose delay/timing evidence says they are ordered.
    synchronized_pairs: Set[PairKey] = field(default_factory=set)
    #: Pairs observed overlapping (potential thread-safety violations).
    racy_pairs: Set[PairKey] = field(default_factory=set)

    @property
    def total_pairs(self) -> int:
        return len(self.synchronized_pairs | self.racy_pairs)


def _unsafe_calls(log: TraceLog):
    """ENTER events of thread-unsafe API call sites, with their spans."""
    opens: Dict[Tuple[int, str], float] = {}
    spans = []  # (enter_event, start, end)
    for e in log:
        if e.meta.get("unsafe_api"):
            if e.optype is OpType.ENTER:
                opens[(e.thread_id, e.name)] = e.timestamp
            elif e.optype is OpType.EXIT:
                start = opens.pop((e.thread_id, e.name), e.timestamp)
                spans.append((e, start, e.timestamp))
    return spans


def analyze_log(log: TraceLog, result: TsvdResult, near: float) -> None:
    """Classify conflicting unsafe-API pairs in one run."""
    spans = _unsafe_calls(log)
    for i, (a, a_start, a_end) in enumerate(spans):
        for b, b_start, b_end in spans[i + 1:]:
            if b_start - a_end > near:
                continue
            if a.thread_id == b.thread_id or a.address != b.address:
                continue
            if (
                a.meta.get("unsafe_api") != "write"
                and b.meta.get("unsafe_api") != "write"
            ):
                continue
            key = (OpRef(a.name, OpType.ENTER), OpRef(b.name, OpType.ENTER))
            if b_start < a_end:  # overlapping execution: potential TSV
                result.racy_pairs.add(key)
            else:
                result.synchronized_pairs.add(key)
    # A pair seen both ways is racy.
    result.synchronized_pairs -= result.racy_pairs


def run_tsvd(app: Application, seed: int = 0, runs: int = 3,
             near: float = 1.0) -> TsvdResult:
    """TSVD over ``runs`` executions of the app's test suite.

    TSVD's own delay injection is approximated by the natural timing
    variation across the seeded runs — the comparison in §5.6 only uses
    the resulting pair counts.
    """
    result = TsvdResult(app.app_id)
    for run_id in range(runs):
        options = RunOptions(seed=seed + run_id, run_id=run_id)
        for execution in run_application(app, options):
            analyze_log(execution.log, result, near)
    return result


def sherlock_synchronized_pairs(
    app: Application, inferred_names: Set[str], seed: int = 0
) -> Set[PairKey]:
    """Conflicting unsafe-API pairs SherLock's inference marks as
    synchronized: pairs whose interval contains an inferred sync op."""
    from ..core.windows import WindowExtractor

    pairs: Set[PairKey] = set()
    options = RunOptions(seed=seed, run_id=0)
    extractor = WindowExtractor(near=1.0, window_cap=15)
    for execution in run_application(app, options):
        for window in extractor.extract(execution.log):
            a_ref, b_ref = window.pair_key
            if not (
                a_ref.optype is OpType.ENTER and b_ref.optype is OpType.ENTER
            ):
                continue
            ops = set(window.release_side) | set(window.acquire_side)
            if any(ref.name in inferred_names for ref in ops):
                pairs.add(window.pair_key)
    return pairs


__all__ = [
    "TsvdResult",
    "analyze_log",
    "run_tsvd",
    "sherlock_synchronized_pairs",
]
